"""text — tokenization, BM25 (array kernel + legacy oracle), embeddings."""

from .bm25 import BM25Hit, BM25Index
from .bm25_legacy import LegacyBM25Index
from .embedding import CachedEmbedder, HashingEmbedder, cosine_similarity
from .tokenize import (
    STOPWORDS,
    char_ngrams,
    char_ngrams_cached,
    stem,
    token_cache_stats,
    tokenize,
    tokenize_cached,
)

__all__ = [
    "BM25Index",
    "LegacyBM25Index",
    "BM25Hit",
    "HashingEmbedder",
    "CachedEmbedder",
    "cosine_similarity",
    "tokenize",
    "tokenize_cached",
    "char_ngrams_cached",
    "token_cache_stats",
    "stem",
    "char_ngrams",
    "STOPWORDS",
]
