"""An Okapi BM25 inverted index with an array-native scoring kernel.

This is the lexical half of Pneuma-Retriever's hybrid index and the whole
of the FTS baseline.  Scores follow Robertson & Zaragoza (2009) with the
usual ``k1``/``b`` parameterization and non-negative IDF — numerically
identical to :class:`~repro.text.bm25_legacy.LegacyBM25Index`, which the
equivalence battery holds this kernel to.

Layout (the PR-2 plan/compile approach applied to retrieval):

* doc_ids are interned to dense int slots (freed slots are recycled), so
  scoring never touches strings;
* each term's postings live in parallel numpy arrays — ``int32`` slots,
  ``float32`` tfs — plus a precomputed ``float64`` per-posting score
  contribution (IDF and the ``k1*(1-b+b*len/avg)`` length normalization
  are corpus-level constants between mutations, cached under a version
  counter);
* a query accumulates contributions into one dense ``float64`` buffer
  (per-thread, so frozen indexes stay lock-free under concurrent
  search) and takes top-k via ``argpartition`` instead of
  dict-accumulate plus a full sort;
* :meth:`compile` — the freeze-time step — impact-sorts every posting
  list and records a per-term max-score bound, which search uses for
  MaxScore-style early exit: once the running top-k floor provably
  exceeds what the remaining low-impact terms could give a new
  document, those terms only update existing candidates.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .tokenize import tokenize, tokenize_cached


@dataclass
class BM25Hit:
    doc_id: str
    score: float


@dataclass
class _TermEntry:
    """One term's compiled postings: parallel arrays plus score bound."""

    slots: np.ndarray  # int32 doc slots, impact-sorted (descending contrib)
    tfs: np.ndarray  # float32 term frequencies, parallel to ``slots``
    contrib: np.ndarray  # float64 per-posting score contribution
    idf: float
    max_score: float  # contrib[0]: upper bound of this term's contribution


#: Safety margin on the MaxScore bound: prune new candidates only when the
#: running top-k floor beats the remaining terms' bound by more than any
#: float-summation discrepancy could account for, so early exit can never
#: change a ranking.
_PRUNE_MARGIN = 1e-9


class _Scratch(threading.local):
    """Per-thread scoring buffers.

    A frozen index is searched lock-free by many sessions at once, so the
    reusable accumulator cannot be shared.  ``tags`` + ``epoch`` give
    O(1) "is this slot touched yet?" without clearing between queries.
    """

    def __init__(self):
        self.scores = np.empty(0, dtype=np.float64)
        self.tags = np.empty(0, dtype=np.int64)
        self.epoch = 0

    def acquire(self, n_slots: int) -> Tuple[np.ndarray, np.ndarray, int]:
        if self.scores.shape[0] < n_slots:
            capacity = max(n_slots, 256)
            self.scores = np.empty(capacity, dtype=np.float64)
            self.tags = np.zeros(capacity, dtype=np.int64)
            self.epoch = 0
        self.epoch += 1
        return self.scores, self.tags, self.epoch


class BM25Index:
    """Incremental BM25 index over string documents keyed by ``doc_id``."""

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        if k1 < 0:
            raise ValueError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b
        # Set when this index was hydrated from a persistent segment: the
        # mutable postings dicts were never rebuilt, so mutation (which
        # depends on them) is forbidden — search-only, like the frozen
        # serving index the segment was written from.
        self._hydrated = False
        # Lazy per-term hydration source: (term -> row, idf, CSR offsets,
        # flat slots/tfs/contrib).  ``None`` on ordinary indexes.
        self._seg: Optional[Tuple[Dict[str, int], np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray, np.ndarray]] = None
        # Doc interning: slot -> doc_id / length (stale after removal, the
        # slot is recycled by the next add).
        self._doc_ids: List[Optional[str]] = []
        self._doc_lengths: List[int] = []
        self._doc_index: Dict[str, int] = {}  # doc_id -> slot
        self._free_slots: List[int] = []
        # Mutable postings: term -> {slot: tf}; the reverse map makes
        # remove() touch only the removed document's own terms.
        self._postings: Dict[str, Dict[int, int]] = {}
        self._doc_terms: Dict[int, Tuple[str, ...]] = {}
        self._total_length = 0
        # Corpus version counter: bumped per mutation, invalidates the
        # compiled per-term arrays, IDFs, and the norm vector.
        self._version = 0
        self._stats_version = -1
        self._compiled_version = -1
        self._entries: Dict[str, _TermEntry] = {}
        self._norm: Optional[np.ndarray] = None  # slot -> k1*(1-b+b*len/avg)
        self._scratch = _Scratch()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, doc_id: str, text: str) -> None:
        """Index a document; re-adding an id replaces the old content."""
        self._check_mutable()
        if doc_id in self._doc_index:
            self.remove(doc_id)
        tokens = tokenize(text)
        if self._free_slots:
            slot = self._free_slots.pop()
            self._doc_ids[slot] = doc_id
            self._doc_lengths[slot] = len(tokens)
        else:
            slot = len(self._doc_ids)
            self._doc_ids.append(doc_id)
            self._doc_lengths.append(len(tokens))
        self._doc_index[doc_id] = slot
        self._total_length += len(tokens)
        counts = Counter(tokens)
        self._doc_terms[slot] = tuple(counts)
        for term, tf in counts.items():
            self._postings.setdefault(term, {})[slot] = tf
        self._version += 1

    def add_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """Index many ``(doc_id, text)`` pairs in one call."""
        for doc_id, text in items:
            self.add(doc_id, text)

    def remove(self, doc_id: str) -> None:
        """Drop a document, touching only its own terms (reverse map)."""
        self._check_mutable()
        slot = self._doc_index.get(doc_id)
        if slot is None:
            raise KeyError(f"document {doc_id!r} is not indexed")
        del self._doc_index[doc_id]
        self._total_length -= self._doc_lengths[slot]
        for term in self._doc_terms.pop(slot):
            posting = self._postings[term]
            del posting[slot]
            if not posting:
                del self._postings[term]
        self._doc_ids[slot] = None
        self._doc_lengths[slot] = 0
        self._free_slots.append(slot)
        self._version += 1

    def _check_mutable(self) -> None:
        if self._hydrated:
            raise RuntimeError(
                "this BM25Index was hydrated from a persistent segment and is "
                "search-only; rebuild from source texts to mutate"
            )

    def __len__(self) -> int:
        return len(self._doc_index)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_index

    # ------------------------------------------------------------------
    # Interning introspection (the hybrid index fuses over these ints)
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of interned slots, including recyclable freed ones."""
        return len(self._doc_ids)

    def slot_items(self) -> Iterable[Tuple[str, int]]:
        """Live ``(doc_id, slot)`` pairs."""
        return self._doc_index.items()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> bool:
        return self._compiled_version == self._version

    def compile(self) -> "BM25Index":
        """Freeze-time compile: materialize every term's impact-sorted
        arrays and max-score bound so search can early-exit.  Idempotent;
        any mutation invalidates (the next search falls back to the lazy
        per-term path until :meth:`compile` runs again)."""
        if self.compiled:
            return self
        self._refresh_stats()
        for term in self._postings:
            self._term_entry(term)
        self._compiled_version = self._version
        return self

    # ------------------------------------------------------------------
    # Persistence (the storage subsystem's segment codec drives these)
    # ------------------------------------------------------------------
    def export_compiled(self) -> Dict[str, object]:
        """A flat, file-ready view of the compiled index.

        Everything search needs, as parallel arrays: the interned doc
        table, the norm vector, and every term's impact-sorted postings
        concatenated in sorted-term order behind a CSR ``offsets`` array.
        Restoring these bytes via :meth:`hydrate_compiled` yields an index
        whose rankings are bit-identical (same contributions, same
        summation order, same tie-breaks).  Compiles first if needed.
        """
        if self._seg is not None:
            rows, idf, offsets, slots, tfs, contrib = self._seg
            terms = list(rows)
        else:
            self.compile()
            terms = sorted(self._postings)
            entries = [self._term_entry(term) for term in terms]
            sizes = np.array([e.slots.size for e in entries], dtype=np.int64)
            offsets = np.zeros(len(terms) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            if entries:
                slots = np.concatenate([e.slots for e in entries])
                tfs = np.concatenate([e.tfs for e in entries])
                contrib = np.concatenate([e.contrib for e in entries])
            else:
                slots = np.empty(0, dtype=np.int32)
                tfs = np.empty(0, dtype=np.float32)
                contrib = np.empty(0, dtype=np.float64)
            idf = np.array([e.idf for e in entries], dtype=np.float64)
        norm = self._norm if self._norm is not None else np.empty(0, dtype=np.float64)
        return {
            "meta": {
                "k1": self.k1,
                "b": self.b,
                "total_length": self._total_length,
            },
            "doc_ids": list(self._doc_ids),
            "doc_lengths": np.asarray(self._doc_lengths, dtype=np.int64),
            "norm": np.asarray(norm, dtype=np.float64),
            "terms": terms,
            "idf": idf,
            "offsets": offsets,
            "slots": slots,
            "tfs": tfs,
            "contrib": contrib,
        }

    @classmethod
    def hydrate_compiled(
        cls,
        meta: Dict[str, object],
        doc_ids: List[Optional[str]],
        doc_lengths: np.ndarray,
        norm: np.ndarray,
        terms: List[str],
        idf: np.ndarray,
        offsets: np.ndarray,
        slots: np.ndarray,
        tfs: np.ndarray,
        contrib: np.ndarray,
    ) -> "BM25Index":
        """Rebuild a search-only index from :meth:`export_compiled` data.

        The postings arrays are referenced, not copied — pass memory-mapped
        views and searches run straight off the file.  Term entries are
        materialized lazily per queried term.  The mutable postings dicts
        are *not* reconstructed, so :meth:`add`/:meth:`remove` raise.
        """
        index = cls(k1=float(meta["k1"]), b=float(meta["b"]))
        index._doc_ids = list(doc_ids)
        index._doc_lengths = [int(x) for x in doc_lengths]
        index._doc_index = {d: i for i, d in enumerate(index._doc_ids) if d is not None}
        index._free_slots = [i for i, d in enumerate(index._doc_ids) if d is None]
        index._total_length = int(meta["total_length"])
        index._norm = np.asarray(norm, dtype=np.float64)
        index._seg = (
            {term: i for i, term in enumerate(terms)},
            np.asarray(idf, dtype=np.float64),
            np.asarray(offsets, dtype=np.int64),
            np.asarray(slots, dtype=np.int32),
            np.asarray(tfs, dtype=np.float32),
            np.asarray(contrib, dtype=np.float64),
        )
        index._stats_version = index._version
        index._compiled_version = index._version
        index._hydrated = True
        return index

    @property
    def hydrated(self) -> bool:
        """True when restored from a segment (search-only)."""
        return self._hydrated

    def _refresh_stats(self) -> None:
        if self._stats_version == self._version:
            return
        self._entries.clear()
        lengths = np.array(self._doc_lengths, dtype=np.float64)
        if self._doc_index and self._total_length > 0:
            avg_len = self._total_length / len(self._doc_index)
            # Bit-identical to the scalar k1 * (1 - b + b * len / avg).
            self._norm = self.k1 * (1.0 - self.b + self.b * lengths / avg_len)
        else:
            self._norm = np.full(lengths.shape, self.k1 * (1.0 - self.b))
        self._stats_version = self._version

    def _term_entry(self, term: str) -> Optional[_TermEntry]:
        entry = self._entries.get(term)
        if entry is not None:
            return entry
        if self._seg is not None:
            # Hydrated path: slice the term's postings out of the mapped
            # flat arrays (zero-copy views) and memoize the entry.
            rows, idf, offsets, slots, tfs, contrib = self._seg
            row = rows.get(term)
            if row is None:
                return None
            lo, hi = int(offsets[row]), int(offsets[row + 1])
            entry = _TermEntry(
                slots=slots[lo:hi],
                tfs=tfs[lo:hi],
                contrib=contrib[lo:hi],
                idf=float(idf[row]),
                max_score=float(contrib[lo]),
            )
            self._entries[term] = entry
            return entry
        posting = self._postings.get(term)
        if not posting:
            return None
        n, df = len(self._doc_index), len(posting)
        idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        slots = np.fromiter(posting.keys(), count=df, dtype=np.int64)
        tfs = np.fromiter(posting.values(), count=df, dtype=np.float32)
        tf64 = tfs.astype(np.float64)  # exact: tfs are small integers
        # Same op order as the scalar idf * tf * (k1 + 1) / (tf + norm).
        contrib = idf * tf64 * (self.k1 + 1.0) / (tf64 + self._norm[slots])
        order = np.lexsort((slots, -contrib))  # impact-sorted, slot tiebreak
        entry = _TermEntry(
            slots=slots[order].astype(np.int32),
            tfs=tfs[order],
            contrib=np.ascontiguousarray(contrib[order]),
            idf=idf,
            max_score=float(contrib[order[0]]),
        )
        self._entries[term] = entry
        return entry

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _idf(self, term: str) -> float:
        n = len(self._doc_index)
        df = len(self._postings.get(term, ()))
        if df == 0:
            return 0.0
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, query: str, doc_id: str) -> float:
        """BM25 score of one document for a query (0 if no term overlaps)."""
        if self._hydrated:
            raise RuntimeError(
                "score() walks the mutable postings dicts, which a hydrated "
                "index does not carry; use search()/search_batch()"
            )
        slot = self._doc_index.get(doc_id)
        if slot is None:
            raise KeyError(f"document {doc_id!r} is not indexed")
        avg_len = self._total_length / len(self._doc_index)
        total = 0.0
        doc_len = self._doc_lengths[slot]
        for term in sorted(set(tokenize_cached(query))):
            tf = self._postings.get(term, {}).get(slot, 0)
            if tf == 0:
                continue
            idf = self._idf(term)
            denom = tf + self.k1 * (1 - self.b + self.b * doc_len / avg_len) if avg_len else tf
            total += idf * tf * (self.k1 + 1) / denom
        return total

    def search(self, query: str, k: int = 10) -> List[BM25Hit]:
        """Top-k documents by BM25 score (ties broken by doc_id for determinism)."""
        return [
            BM25Hit(self._doc_ids[slot], score)
            for slot, score in self._ranked_slots(query, k)
        ]

    def search_batch(self, queries: Sequence[str], k: int = 10) -> List[List[BM25Hit]]:
        """Top-k hits for each query (corpus statistics shared across the
        batch by construction — they are cached under the version counter)."""
        return [self.search(query, k=k) for query in queries]

    def search_slots(self, queries: Sequence[str], k: int = 10) -> List[np.ndarray]:
        """Rank-ordered int slot arrays per query (the fusion entry point:
        no doc_id strings are materialized)."""
        return [
            np.fromiter((slot for slot, _ in ranked), dtype=np.int64)
            for ranked in (self._ranked_slots(query, k) for query in queries)
        ]

    def _ranked_slots(self, query: str, k: int) -> List[Tuple[int, float]]:
        """Shared kernel: rank-ordered ``(slot, score)`` for one query."""
        if not self._doc_index or k <= 0:
            return []
        self._refresh_stats()
        entries = []
        for term in sorted(set(tokenize_cached(query))):
            entry = self._term_entry(term)
            if entry is not None:
                entries.append(entry)
        if not entries:
            return []
        if self.compiled:
            return self._ranked_maxscore(entries, k)
        return self._ranked_plain(entries, k)

    def _ranked_plain(self, entries: List[_TermEntry], k: int) -> List[Tuple[int, float]]:
        """Dense accumulate over all matching postings (sorted term order,
        so per-doc sums are bit-identical to the legacy oracle's)."""
        scores, tags, epoch = self._scratch.acquire(len(self._doc_ids))
        chunks: List[np.ndarray] = []
        for entry in entries:
            slots = entry.slots
            fresh = tags[slots] != epoch
            if fresh.any():
                new = slots[fresh]
                tags[new] = epoch
                scores[new] = 0.0
                chunks.append(new)
            scores[slots] += entry.contrib
        candidates = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        return self._topk(scores, candidates, k)

    def _ranked_maxscore(self, entries: List[_TermEntry], k: int) -> List[Tuple[int, float]]:
        """Compiled path: process terms by descending max-score bound and
        stop admitting *new* candidate documents once the current top-k
        floor provably exceeds what the remaining terms could contribute.

        The impact-ordered pass only decides *membership* of the
        candidate pool (partial sums are valid lower bounds in any
        order); a second pass then recomputes the candidates' scores in
        sorted-term order, so compiled scores stay bit-identical to the
        legacy oracle and the lazy path regardless of pruning order."""
        by_bound = sorted(entries, key=lambda e: -e.max_score)
        suffix = [0.0] * (len(by_bound) + 1)
        for i in range(len(by_bound) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + by_bound[i].max_score
        scores, tags, epoch = self._scratch.acquire(len(self._doc_ids))
        candidates = np.empty(0, dtype=np.int64)
        kth_floor = -math.inf
        for i, entry in enumerate(by_bound):
            slots = entry.slots
            if candidates.size >= k and kth_floor > suffix[i] * (1.0 + _PRUNE_MARGIN):
                # No unseen doc can reach the top-k; only grow the
                # partial sums of documents already in the pool (they
                # feed kth_floor, making later pruning stronger).
                seen = tags[slots] == epoch
                if seen.any():
                    scores[slots[seen]] += entry.contrib[seen]
                continue
            fresh = tags[slots] != epoch
            if fresh.any():
                new = slots[fresh]
                tags[new] = epoch
                scores[new] = 0.0
                candidates = (
                    new.astype(np.int64)
                    if candidates.size == 0
                    else np.concatenate([candidates, new])
                )
            scores[slots] += entry.contrib
            if candidates.size >= k and i + 1 < len(by_bound):
                vals = scores[candidates]
                kth_floor = (
                    float(np.partition(vals, vals.size - k)[vals.size - k])
                    if vals.size > k
                    else float(vals.min())
                )
        # Exact-score pass in sorted-term order (``entries`` arrives
        # sorted from _ranked_slots): same summation order per document
        # as LegacyBM25Index.search and _ranked_plain, bit for bit.
        scores[candidates] = 0.0
        for entry in entries:
            seen = tags[entry.slots] == epoch
            if seen.any():
                slots = entry.slots[seen]
                scores[slots] += entry.contrib[seen]
        return self._topk(scores, candidates, k)

    def _topk(self, scores: np.ndarray, candidates: np.ndarray, k: int) -> List[Tuple[int, float]]:
        """Exact top-k over the candidate slots: argpartition down to the
        score threshold, then one small sort with the legacy tie-break
        (descending score, ascending doc_id)."""
        n = candidates.size
        if n == 0:
            return []
        values = scores[candidates]
        if k < n:
            top = np.argpartition(values, n - k)[n - k:]
            threshold = values[top].min()
            keep = values >= threshold  # keep boundary ties for exact tie-break
            candidates = candidates[keep]
            values = values[keep]
        doc_ids = self._doc_ids
        order = sorted(
            range(candidates.size), key=lambda i: (-values[i], doc_ids[candidates[i]])
        )[:k]
        return [(int(candidates[i]), float(values[i])) for i in order]
