"""The original dict-at-a-time Okapi BM25 index, kept as oracle + baseline.

This is the pre-kernel implementation of :class:`~repro.text.bm25.BM25Index`
verbatim (scores follow Robertson & Zaragoza, 2009): postings are
``term -> {doc_id: tf}`` dicts and a query is scored by dict-accumulate
plus a full sort.  It survives for two reasons:

* **semantic oracle** — the equivalence battery in
  ``tests/retriever/test_kernel_equivalence.py`` and the benchmark both
  require the array-native kernel to reproduce this index's rankings
  exactly (scores within 1e-9);
* **benchmark baseline** — ``benchmarks/bench_retrieval_kernel.py``
  reports the kernel's speedup over this implementation (``--legacy``).

The only change from the original: query terms are iterated in sorted
order, so per-document score sums accumulate in a deterministic order
that the kernel mirrors bit-for-bit.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from .bm25 import BM25Hit
from .tokenize import tokenize


class LegacyBM25Index:
    """Incremental BM25 index over string documents keyed by ``doc_id``."""

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        if k1 < 0:
            raise ValueError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, Dict[str, int]] = {}  # term -> {doc_id: tf}
        self._doc_lengths: Dict[str, int] = {}
        self._total_length = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, doc_id: str, text: str) -> None:
        """Index a document; re-adding an id replaces the old content."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        tokens = tokenize(text)
        self._doc_lengths[doc_id] = len(tokens)
        self._total_length += len(tokens)
        for term, tf in Counter(tokens).items():
            self._postings.setdefault(term, {})[doc_id] = tf

    def add_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """Index many ``(doc_id, text)`` pairs in one call."""
        for doc_id, text in items:
            self.add(doc_id, text)

    def remove(self, doc_id: str) -> None:
        # The full-vocabulary scan is the known soft spot this class is an
        # oracle *for*; the kernel keeps a doc -> terms reverse map instead.
        if doc_id not in self._doc_lengths:
            raise KeyError(f"document {doc_id!r} is not indexed")
        self._total_length -= self._doc_lengths.pop(doc_id)
        empty_terms = []
        for term, posting in self._postings.items():
            posting.pop(doc_id, None)
            if not posting:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _idf(self, term: str) -> float:
        n = len(self._doc_lengths)
        df = len(self._postings.get(term, ()))
        if df == 0:
            return 0.0
        # The +1 inside the log keeps IDF non-negative for common terms.
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, query: str, doc_id: str) -> float:
        """BM25 score of one document for a query (0 if no term overlaps)."""
        if doc_id not in self._doc_lengths:
            raise KeyError(f"document {doc_id!r} is not indexed")
        avg_len = self._total_length / len(self._doc_lengths)
        total = 0.0
        doc_len = self._doc_lengths[doc_id]
        for term in sorted(set(tokenize(query))):
            tf = self._postings.get(term, {}).get(doc_id, 0)
            if tf == 0:
                continue
            idf = self._idf(term)
            denom = tf + self.k1 * (1 - self.b + self.b * doc_len / avg_len) if avg_len else tf
            total += idf * tf * (self.k1 + 1) / denom
        return total

    def search(self, query: str, k: int = 10) -> List[BM25Hit]:
        """Top-k documents by BM25 score (ties broken by doc_id for determinism)."""
        if not self._doc_lengths:
            return []
        avg_len = self._total_length / len(self._doc_lengths)
        scores: Dict[str, float] = {}
        for term in sorted(set(tokenize(query))):
            posting = self._postings.get(term)
            if not posting:
                continue
            idf = self._idf(term)
            for doc_id, tf in posting.items():
                doc_len = self._doc_lengths[doc_id]
                denom = tf + self.k1 * (1 - self.b + self.b * doc_len / avg_len)
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * tf * (self.k1 + 1) / denom
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [BM25Hit(doc_id, score) for doc_id, score in ranked[:k]]

    def search_batch(self, queries: Sequence[str], k: int = 10) -> List[List[BM25Hit]]:
        """Top-k hits for each query, sharing the per-call corpus statistics."""
        if not self._doc_lengths:
            return [[] for _ in queries]
        avg_len = self._total_length / len(self._doc_lengths)
        idf_cache: Dict[str, float] = {}
        results: List[List[BM25Hit]] = []
        for query in queries:
            scores: Dict[str, float] = {}
            for term in sorted(set(tokenize(query))):
                posting = self._postings.get(term)
                if not posting:
                    continue
                idf = idf_cache.get(term)
                if idf is None:
                    idf = idf_cache[term] = self._idf(term)
                for doc_id, tf in posting.items():
                    doc_len = self._doc_lengths[doc_id]
                    denom = tf + self.k1 * (1 - self.b + self.b * doc_len / avg_len)
                    scores[doc_id] = scores.get(doc_id, 0.0) + idf * tf * (self.k1 + 1) / denom
            ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
            results.append([BM25Hit(doc_id, score) for doc_id, score in ranked[:k]])
        return results
