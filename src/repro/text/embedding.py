"""Deterministic feature-hashing embeddings.

The paper's Pneuma-Retriever uses neural sentence embeddings in its HNSW
vector store.  Offline, we substitute signed feature hashing over word
unigrams, word bigrams, and character trigrams, L2-normalized.  Cosine
similarity then reflects lexical/sub-lexical overlap, which is what the
hybrid index needs from the dense half on our corpora (see DESIGN.md §2).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from .tokenize import char_ngrams_cached, tokenize_cached


def _hash_feature(feature: str, dim: int) -> tuple:
    """Stable (index, sign) pair for a feature string."""
    digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "little")
    index = value % dim
    sign = 1.0 if (value >> 63) & 1 else -1.0
    return index, sign


class HashingEmbedder:
    """Maps text to a fixed-dimension unit vector, deterministically."""

    #: Relative weights of the three feature families.
    WORD_WEIGHT = 1.0
    BIGRAM_WEIGHT = 0.75
    CHAR_WEIGHT = 0.25

    def __init__(self, dim: int = 256):
        if dim < 8:
            raise ValueError(f"embedding dim must be >= 8, got {dim}")
        self.dim = dim

    def _features(self, text: str) -> List[tuple]:
        # Memoized tokenization: queries re-embed every Conductor turn,
        # and the narration/vector caches above this layer only absorb
        # exact repeats of the *embedding*, not of the token stream.
        words = tokenize_cached(text)
        features = [(f"w:{w}", self.WORD_WEIGHT) for w in words]
        features += [
            (f"b:{a}_{b}", self.BIGRAM_WEIGHT) for a, b in zip(words, words[1:])
        ]
        features += [(f"c:{g}", self.CHAR_WEIGHT) for g in char_ngrams_cached(text, 3)]
        return features

    def embed(self, text: str) -> np.ndarray:
        """Embed one text as a float64 unit vector (zero vector for empty text)."""
        vec = np.zeros(self.dim, dtype=np.float64)
        for feature, weight in self._features(text):
            index, sign = _hash_feature(feature, self.dim)
            vec[index] += sign * weight
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec /= norm
        return vec

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into a (n, dim) matrix."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(t) for t in texts])


class CachedEmbedder:
    """A memoizing wrapper around :class:`HashingEmbedder`.

    Narrations are re-embedded every time a catalog is (re)indexed; for an
    unchanged catalog that work is pure waste.  The cache is keyed by the
    text itself, bounded by ``max_entries`` (FIFO eviction), thread-safe,
    and counts hits/misses so the serving layer can expose the numbers.
    """

    def __init__(self, inner: Optional[HashingEmbedder] = None, dim: int = 256,
                 max_entries: int = 50_000):
        self.inner = inner if inner is not None else HashingEmbedder(dim=dim)
        self.max_entries = max_entries
        self._cache: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def dim(self) -> int:
        return self.inner.dim

    def embed(self, text: str) -> np.ndarray:
        with self._lock:
            cached = self._cache.get(text)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        vector = self.inner.embed(text)
        vector.setflags(write=False)  # shared across threads; never mutate
        with self._lock:
            self._cache[text] = vector
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(t) for t in texts])

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._cache)}

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is zero)."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))
