"""Tokenization, stopwords, and light stemming for the retrieval stack."""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List, Tuple

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# camelCase boundary, compiled once: tokenize() sits in the narration /
# indexing hot loop, and re.sub with a string pattern re-checks the regex
# cache on every call.
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

# A compact English stopword list; enough to keep BM25 scores meaningful on
# schema narrations and questions without an external dependency.
STOPWORDS = frozenset(
    """
    a an and are as at be but by for from has have in into is it its of on or
    that the their there these they this to was were what when where which who
    will with would you your i we our us can could should about above after
    all also am any because been before being below between both did do does
    doing down during each few further he her here hers him his how if me more
    most my no nor not now off once only other out over own same she so some
    such than then through under until up very
    """.split()
)

_VERB_SUFFIXES = ("ingly", "edly", "ing", "ed", "ly")


def stem(token: str) -> str:
    """A light suffix-stripping stemmer (deterministic, no tables).

    Not Porter-complete, but collapses the inflections that matter for
    matching schema narrations against questions (e.g. ``samples`` ->
    ``sample``, ``recorded`` -> ``record``, ``studies`` -> ``study``).
    """
    if len(token) <= 3:
        return token
    # Plurals first, then verb endings (so "readings" -> "reading" -> "read").
    if token.endswith("sses"):
        token = token[:-2]
    elif token.endswith("ies") and len(token) > 4:
        token = token[:-3] + "y"
    elif token.endswith("ss") or token.endswith("us") or token.endswith("is"):
        pass
    elif token.endswith("s"):
        token = token[:-1]
    if token.endswith("ation") and len(token) - 5 >= 3:
        # "interpolation" -> "interpolate" (then the final-e strip below
        # aligns it with "interpolated" -> "interpolat").
        token = token[:-5] + "ate"
    for suffix in _VERB_SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            token = token[: -len(suffix)]
            # Undouble trailing consonants: "planning" -> "plan".
            if len(token) >= 2 and token[-1] == token[-2] and token[-1] not in "aeiou":
                token = token[:-1]
            break
    # Final-e normalization collapses "sample"/"samples" and
    # "interpolate"/"interpolated" to one form.
    if token.endswith("e") and len(token) > 4:
        token = token[:-1]
    return token


def tokenize(text: str, stop: bool = True, do_stem: bool = True) -> List[str]:
    """Lowercase word tokens; snake_case and camelCase split into words."""
    # Split camelCase before lowering so column names narrate well.
    text = _CAMEL_RE.sub(" ", text)
    tokens = _TOKEN_RE.findall(text.lower())
    if stop:
        tokens = [t for t in tokens if t not in STOPWORDS]
    if do_stem:
        tokens = [stem(t) for t in tokens]
    return tokens


#: Bound on the query-tokenization memo.  Queries repeat every Conductor
#: turn (search / score / embed all re-tokenize the same strings), so a
#: small LRU absorbs the hot set without growing with the corpus.
TOKEN_CACHE_SIZE = 4096


@lru_cache(maxsize=TOKEN_CACHE_SIZE)
def _tokenize_cached(text: str, stop: bool, do_stem: bool) -> Tuple[str, ...]:
    return tuple(tokenize(text, stop=stop, do_stem=do_stem))


def tokenize_cached(text: str, stop: bool = True, do_stem: bool = True) -> Tuple[str, ...]:
    """Memoized :func:`tokenize` for hot query strings (bounded LRU).

    Returns an immutable tuple (the cached value is shared between
    callers); identical to ``tuple(tokenize(text, ...))``.
    """
    return _tokenize_cached(text, stop, do_stem)


@lru_cache(maxsize=TOKEN_CACHE_SIZE)
def _char_ngrams_cached(text: str, n: int) -> Tuple[str, ...]:
    return tuple(char_ngrams(text, n))


def char_ngrams_cached(text: str, n: int = 3) -> Tuple[str, ...]:
    """Memoized :func:`char_ngrams` (bounded LRU, shared immutable tuple)."""
    return _char_ngrams_cached(text, n)


def token_cache_stats() -> dict:
    """Hit/miss/size counters of both memo layers (for service stats)."""
    tok, grams = _tokenize_cached.cache_info(), _char_ngrams_cached.cache_info()
    return {
        "tokenize": {"hits": tok.hits, "misses": tok.misses, "size": tok.currsize},
        "char_ngrams": {"hits": grams.hits, "misses": grams.misses, "size": grams.currsize},
    }


def char_ngrams(text: str, n: int = 3) -> List[str]:
    """Character n-grams over the normalized text (for robust embeddings)."""
    normalized = " ".join(_TOKEN_RE.findall(text.lower()))
    if len(normalized) < n:
        return [normalized] if normalized else []
    return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]
