"""Tokenization, stopwords, and light stemming for the retrieval stack."""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# camelCase boundary, compiled once: tokenize() sits in the narration /
# indexing hot loop, and re.sub with a string pattern re-checks the regex
# cache on every call.
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

# A compact English stopword list; enough to keep BM25 scores meaningful on
# schema narrations and questions without an external dependency.
STOPWORDS = frozenset(
    """
    a an and are as at be but by for from has have in into is it its of on or
    that the their there these they this to was were what when where which who
    will with would you your i we our us can could should about above after
    all also am any because been before being below between both did do does
    doing down during each few further he her here hers him his how if me more
    most my no nor not now off once only other out over own same she so some
    such than then through under until up very
    """.split()
)

_VERB_SUFFIXES = ("ingly", "edly", "ing", "ed", "ly")


def stem(token: str) -> str:
    """A light suffix-stripping stemmer (deterministic, no tables).

    Not Porter-complete, but collapses the inflections that matter for
    matching schema narrations against questions (e.g. ``samples`` ->
    ``sample``, ``recorded`` -> ``record``, ``studies`` -> ``study``).
    """
    if len(token) <= 3:
        return token
    # Plurals first, then verb endings (so "readings" -> "reading" -> "read").
    if token.endswith("sses"):
        token = token[:-2]
    elif token.endswith("ies") and len(token) > 4:
        token = token[:-3] + "y"
    elif token.endswith("ss") or token.endswith("us") or token.endswith("is"):
        pass
    elif token.endswith("s"):
        token = token[:-1]
    if token.endswith("ation") and len(token) - 5 >= 3:
        # "interpolation" -> "interpolate" (then the final-e strip below
        # aligns it with "interpolated" -> "interpolat").
        token = token[:-5] + "ate"
    for suffix in _VERB_SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            token = token[: -len(suffix)]
            # Undouble trailing consonants: "planning" -> "plan".
            if len(token) >= 2 and token[-1] == token[-2] and token[-1] not in "aeiou":
                token = token[:-1]
            break
    # Final-e normalization collapses "sample"/"samples" and
    # "interpolate"/"interpolated" to one form.
    if token.endswith("e") and len(token) > 4:
        token = token[:-1]
    return token


def tokenize(text: str, stop: bool = True, do_stem: bool = True) -> List[str]:
    """Lowercase word tokens; snake_case and camelCase split into words."""
    # Split camelCase before lowering so column names narrate well.
    text = _CAMEL_RE.sub(" ", text)
    tokens = _TOKEN_RE.findall(text.lower())
    if stop:
        tokens = [t for t in tokens if t not in STOPWORDS]
    if do_stem:
        tokens = [stem(t) for t in tokens]
    return tokens


def char_ngrams(text: str, n: int = 3) -> List[str]:
    """Character n-grams over the normalized text (for robust embeddings)."""
    normalized = " ".join(_TOKEN_RE.findall(text.lower()))
    if len(normalized) < n:
        return [normalized] if normalized else []
    return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]
