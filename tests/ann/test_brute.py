"""Unit tests for the brute-force ANN baseline and metrics."""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, cosine_distance, inner_product_distance, l2_distance, resolve_metric


class TestMetrics:
    def test_l2(self):
        assert l2_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_cosine_identical(self):
        v = np.array([1.0, 2.0])
        assert cosine_distance(v, v) == pytest.approx(0.0)

    def test_cosine_orthogonal(self):
        assert cosine_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_cosine_zero_vector(self):
        assert cosine_distance(np.zeros(2), np.ones(2)) == 1.0

    def test_inner_product(self):
        assert inner_product_distance(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == -11.0

    def test_resolve_unknown(self):
        with pytest.raises(ValueError):
            resolve_metric("manhattan")


class TestBruteForce:
    def test_exact_ordering(self):
        index = BruteForceIndex(dim=1, metric="l2")
        for i, value in enumerate([0.0, 10.0, 5.0]):
            index.add(f"v{i}", np.array([value]))
        hits = index.search(np.array([4.0]), k=3)
        assert [h.key for h in hits] == ["v2", "v0", "v1"]

    def test_replace_same_key(self):
        index = BruteForceIndex(dim=1)
        index.add("a", np.array([1.0]))
        index.add("a", np.array([2.0]))
        assert len(index) == 1

    def test_wrong_dim_raises(self):
        index = BruteForceIndex(dim=2)
        with pytest.raises(ValueError):
            index.add("a", np.ones(3))

    def test_deterministic_tie_break_by_key(self):
        index = BruteForceIndex(dim=1, metric="l2")
        index.add("b", np.array([1.0]))
        index.add("a", np.array([1.0]))
        hits = index.search(np.array([1.0]), k=2)
        assert [h.key for h in hits] == ["a", "b"]
