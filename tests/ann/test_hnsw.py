"""Unit and property tests for the HNSW index against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import BruteForceIndex, HNSWIndex


def build_pair(vectors, metric="l2"):
    dim = vectors.shape[1]
    hnsw = HNSWIndex(dim=dim, metric=metric, m=8, ef_construction=64, seed=7)
    brute = BruteForceIndex(dim=dim, metric=metric)
    for i, vec in enumerate(vectors):
        hnsw.add(f"v{i}", vec)
        brute.add(f"v{i}", vec)
    return hnsw, brute


class TestBasics:
    def test_empty_search(self):
        index = HNSWIndex(dim=4)
        assert index.search(np.zeros(4), k=3) == []

    def test_single_element(self):
        index = HNSWIndex(dim=4, metric="l2")
        index.add("only", np.ones(4))
        hits = index.search(np.zeros(4), k=3)
        assert [h.key for h in hits] == ["only"]

    def test_duplicate_key_raises(self):
        index = HNSWIndex(dim=4)
        index.add("a", np.ones(4))
        with pytest.raises(KeyError):
            index.add("a", np.zeros(4))

    def test_wrong_dim_raises(self):
        index = HNSWIndex(dim=4)
        with pytest.raises(ValueError):
            index.add("a", np.ones(5))
        with pytest.raises(ValueError):
            index.search(np.ones(5))

    def test_contains_len(self):
        index = HNSWIndex(dim=4)
        index.add("a", np.ones(4))
        assert "a" in index and len(index) == 1

    def test_bad_params(self):
        with pytest.raises(ValueError):
            HNSWIndex(dim=4, m=1)
        with pytest.raises(ValueError):
            HNSWIndex(dim=4, m=16, ef_construction=4)


class TestRecall:
    def test_exact_match_returned_first(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(200, 16))
        hnsw, _ = build_pair(vectors)
        for i in (0, 57, 123, 199):
            hits = hnsw.search(vectors[i], k=1)
            assert hits[0].key == f"v{i}"

    def test_recall_at_10_vs_brute_force(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(500, 24))
        hnsw, brute = build_pair(vectors)
        queries = rng.normal(size=(20, 24))
        total, hit = 0, 0
        for q in queries:
            truth = {n.key for n in brute.search(q, k=10)}
            got = {n.key for n in hnsw.search(q, k=10, ef=80)}
            hit += len(truth & got)
            total += len(truth)
        recall = hit / total
        assert recall >= 0.9, f"HNSW recall too low: {recall:.3f}"

    def test_cosine_metric(self):
        rng = np.random.default_rng(2)
        vectors = rng.normal(size=(100, 8))
        hnsw, brute = build_pair(vectors, metric="cosine")
        q = rng.normal(size=8)
        truth = [n.key for n in brute.search(q, k=5)]
        got = [n.key for n in hnsw.search(q, k=5, ef=60)]
        assert len(set(truth) & set(got)) >= 4

    def test_distances_sorted(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(80, 8))
        hnsw, _ = build_pair(vectors)
        hits = hnsw.search(rng.normal(size=8), k=10)
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10_000))
def test_nearest_neighbor_always_found_small(n, seed):
    """On small sets, HNSW with wide ef is exact for k=1."""
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, 6))
    hnsw, brute = build_pair(vectors)
    q = rng.normal(size=6)
    truth = brute.search(q, k=1)[0]
    got = hnsw.search(q, k=1, ef=max(40, n))[0]
    assert got.distance == pytest.approx(truth.distance)


class TestBatchAPI:
    def test_search_batch_matches_search(self):
        rng = np.random.default_rng(11)
        vectors = rng.normal(size=(60, 8))
        hnsw, _ = build_pair(vectors)
        queries = rng.normal(size=(5, 8))
        batched = hnsw.search_batch(queries, k=4, ef=40)
        for query, hits in zip(queries, batched):
            solo = hnsw.search(query, k=4, ef=40)
            assert [(h.key, h.distance) for h in hits] == [(h.key, h.distance) for h in solo]

    def test_search_batch_empty_index_and_batch(self):
        from repro.ann import HNSWIndex

        empty = HNSWIndex(dim=8, m=4, ef_construction=8)
        assert empty.search_batch(np.zeros((2, 8)), k=3) == [[], []]
        assert empty.search_batch(np.zeros((0, 8)), k=3) == []

    def test_search_batch_bad_shape(self):
        rng = np.random.default_rng(5)
        hnsw, _ = build_pair(rng.normal(size=(10, 8)))
        with pytest.raises(ValueError):
            hnsw.search_batch(rng.normal(size=(3, 4)), k=2)

    def test_add_batch(self):
        from repro.ann import HNSWIndex

        rng = np.random.default_rng(7)
        index = HNSWIndex(dim=6, m=4, ef_construction=8)
        index.add_batch([(f"v{i}", rng.normal(size=6)) for i in range(20)])
        assert len(index) == 20
