"""Kernel-specific HNSW behavior: compilation, the compacted matrix,
update-in-place on a compiled index, and concurrent search."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.ann import HNSWIndex


def build(n=80, dim=8, seed=0, metric="cosine"):
    rng = np.random.default_rng(seed)
    index = HNSWIndex(dim=dim, metric=metric, m=4, ef_construction=16, seed=7)
    vectors = rng.normal(size=(n, dim))
    index.add_batch([(f"v{i}", vec) for i, vec in enumerate(vectors)])
    return index, vectors, rng


class TestCompile:
    def test_compile_preserves_results(self):
        index, vectors, rng = build()
        queries = rng.normal(size=(10, 8))
        before = index.search_batch(queries, k=5)
        index.compile()
        assert index.compiled
        after = index.search_batch(queries, k=5)
        assert [[(h.key, h.distance) for h in hits] for hits in before] == [
            [(h.key, h.distance) for h in hits] for hits in after
        ]

    def test_compile_idempotent(self):
        index, _, _ = build(n=20)
        index.compile()
        csr = index._csr
        index.compile()
        assert index._csr is csr

    def test_add_after_compile_decompiles_and_works(self):
        index, _, rng = build(n=30)
        index.compile()
        index.add("late", rng.normal(size=8))
        assert not index.compiled
        assert "late" in index and len(index) == 31
        hits = index.search(rng.normal(size=8), k=31)
        assert len(hits) >= 1  # graph still connected and searchable

    def test_compiled_matrix_is_compacted(self):
        index, _, _ = build(n=33)
        assert index._matrix.shape[0] >= 33  # doubling leaves headroom
        index.compile()
        assert index._matrix.shape[0] == 33  # trimmed to live rows


class TestUpdateOnCompiled:
    def test_update_then_search_uses_new_vector(self):
        index, vectors, _ = build(n=50, metric="l2")
        index.compile()
        target = vectors[7] + 100.0  # move v7 far away
        index.update("v7", target)
        hits = index.search(target, k=3, ef=60)
        assert hits[0].key == "v7"
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)
        # And v7 no longer ranks near its old position.
        old_hits = index.search(vectors[7], k=3, ef=60)
        assert old_hits[0].key != "v7"

    def test_update_cosine_renormalizes(self):
        index = HNSWIndex(dim=4, metric="cosine", m=2, ef_construction=4)
        index.add("a", np.array([1.0, 0.0, 0.0, 0.0]))
        index.add("b", np.array([0.0, 1.0, 0.0, 0.0]))
        index.compile()
        # Same direction, wildly different magnitude: cosine must not care.
        index.update("a", np.array([1000.0, 0.0, 0.0, 0.0]))
        hits = index.search(np.array([1.0, 0.0, 0.0, 0.0]), k=1)
        assert hits[0].key == "a"
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_update_missing_raises(self):
        index, _, _ = build(n=5)
        with pytest.raises(KeyError):
            index.update("ghost", np.zeros(8))


class TestConcurrentSearch:
    def test_parallel_searches_match_serial(self):
        """The per-thread visited scratch must keep concurrent searches on
        a compiled index independent."""
        index, _, rng = build(n=200, dim=12)
        index.compile()
        queries = rng.normal(size=(40, 12))
        serial = [[(h.key, h.distance) for h in index.search(q, k=5)] for q in queries]
        with ThreadPoolExecutor(max_workers=8) as pool:
            parallel = list(pool.map(lambda q: [(h.key, h.distance) for h in index.search(q, k=5)], queries))
        assert parallel == serial
