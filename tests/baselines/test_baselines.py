"""Unit tests for the baseline systems."""

import datetime

import pytest

from repro.baselines import (
    DSGuruRunner,
    FTSSystem,
    FullContextRunner,
    RAGSystem,
    RetrieverOnlySystem,
    SeekerSystem,
    StaticPipelineRunner,
    build_full_context_llm,
)
from repro.datasets.questions import Question
from repro.relational import Database, Table


@pytest.fixture(scope="module")
def lake():
    db = Database("lake")
    db.register(
        Table.from_columns(
            "readings",
            {
                "station": ["North"] * 3 + ["South"] * 3,
                "day": [datetime.date(2020, 1, d + 1) for d in range(6)],
                "pm25": [5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
            },
        )
    )
    db.register(
        Table.from_columns(
            "budgets", {"dept": ["IT", "HR"], "usd": [100.0, 50.0]}
        )
    )
    return db


class TestStaticSystems:
    def test_fts_returns_raw_tables(self, lake):
        out = FTSSystem(lake).respond("pm25 readings by station")
        assert "table readings" in out
        assert "pm25" in out
        assert "row:" in out

    def test_fts_no_match(self, lake):
        assert FTSSystem(lake).respond("xylophone") == "No matching tables."

    def test_retriever_only(self, lake):
        out = RetrieverOnlySystem(lake).respond("department budgets in usd")
        assert "table budgets" in out

    def test_static_systems_never_compute(self, lake):
        out = FTSSystem(lake).respond("what is the average pm25")
        assert "answer" not in out.lower()

    def test_kind_markers(self, lake):
        assert FTSSystem(lake).kind == "static"
        assert RetrieverOnlySystem(lake).kind == "static"
        assert RAGSystem(lake).kind == "rag"
        assert SeekerSystem(lake).kind == "seeker"


class TestRAGSystem:
    def test_interprets_but_never_answers_value(self, lake):
        system = RAGSystem(lake)
        text = system.respond("what is the average pm25 at North?")
        assert "readings" in text
        assert system.answer("average pm25") is None

    def test_accumulates_context(self, lake):
        system = RAGSystem(lake)
        system.respond("tell me about air quality readings")
        text = system.respond("and the budgets?")
        assert "budgets" in text


class TestDSGuru:
    def test_solves_simple_aggregate(self, lake):
        runner = DSGuruRunner(lake)
        answer = runner.answer("What is the average pm25 across readings?")
        assert answer == pytest.approx(7.5)

    def test_misses_value_not_in_samples(self, lake):
        # 'South' IS in sample rows? Samples show first 3 rows (all North),
        # so a South filter cannot ground and the answer is unfiltered.
        runner = DSGuruRunner(lake)
        answer = runner.answer("What is the average pm25 at the South station?")
        assert answer == pytest.approx(7.5)  # wrong (truth is 9.0), by design

    def test_unplannable_returns_none(self, lake):
        assert DSGuruRunner(lake).answer("tell me a story") is None


class TestStaticPipeline:
    def test_solves_simple_aggregate(self, lake):
        answer = StaticPipelineRunner(lake).answer("What is the average pm25?")
        assert answer == pytest.approx(7.5)

    def test_unplannable_returns_none(self, lake):
        assert StaticPipelineRunner(lake).answer("hello there") is None


class TestFullContext:
    def _question(self, text, tables):
        return Question(
            qid="fc-01", dataset="test", text=text, topic="t",
            concepts=[], relevant_tables=tables, reference=lambda lake: None,
        )

    def test_answers_when_fits(self, lake):
        runner = FullContextRunner(lake)
        outcome = runner.answer(
            self._question("What is the average pm25?", ["readings"])
        )
        assert not outcome.context_exceeded
        assert outcome.value == pytest.approx(7.5)

    def test_full_visibility_grounds_filters(self, lake):
        runner = FullContextRunner(lake)
        outcome = runner.answer(
            self._question("What is the average pm25 at the South station?", ["readings"])
        )
        assert outcome.value == pytest.approx(9.0)

    def test_context_overflow(self, lake):
        llm = build_full_context_llm(context_tokens=50)
        runner = FullContextRunner(lake, llm=llm)
        outcome = runner.answer(self._question("average pm25?", ["readings"]))
        assert outcome.context_exceeded
        assert outcome.value is None
        assert outcome.prompt_tokens > 50


class TestSeekerSystem:
    def test_answer_and_respond(self, lake):
        system = SeekerSystem(lake)
        assert system.answer("What is the average pm25?") == pytest.approx(7.5)
        out = system.respond("What about the maximum pm25?")
        assert "STATE" in out
