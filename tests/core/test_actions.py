"""Unit tests for the Conductor action space encoding."""

import pytest

from repro.core import (
    ActionError,
    ExecuteSQL,
    GroundValues,
    Materialize,
    MessageUser,
    Reason,
    Retrieve,
    UpdateState,
    action_from_json,
    action_to_json,
)


class TestDecoding:
    def test_all_kinds_decode(self):
        cases = [
            ({"kind": "reason", "thought": "hm"}, Reason),
            ({"kind": "retrieve", "query": "tariffs"}, Retrieve),
            ({"kind": "ground_values", "table": "t", "column": "*"}, GroundValues),
            ({"kind": "update_state", "queries": ["SELECT 1"]}, UpdateState),
            ({"kind": "materialize", "table": "t"}, Materialize),
            ({"kind": "execute_sql"}, ExecuteSQL),
            ({"kind": "message_user", "message": "hi"}, MessageUser),
        ]
        for payload, cls in cases:
            action = action_from_json(payload)
            assert isinstance(action, cls)
            assert action.kind == payload["kind"]

    def test_unknown_kind_raises(self):
        with pytest.raises(ActionError):
            action_from_json({"kind": "teleport"})

    def test_missing_kind_raises(self):
        with pytest.raises(ActionError):
            action_from_json({"query": "x"})

    def test_bad_fields_raise(self):
        with pytest.raises(ActionError):
            action_from_json({"kind": "retrieve", "nonsense": True})

    def test_round_trip(self):
        action = Retrieve(query="find tariffs")
        payload = action_to_json(action)
        assert payload == {"kind": "retrieve", "query": "find tariffs"}
        assert action_from_json(payload) == action

    def test_to_json_omits_empty(self):
        assert action_to_json(ExecuteSQL()) == {"kind": "execute_sql"}
