"""Unit tests for the Conductor loop and Materializer repair behaviour."""

import datetime

import pytest

from repro.core import Conductor, Materializer, SeekerSession, SharedState, TargetColumn, TargetTable
from repro.core.session import build_seeker_llm
from repro.ir import IRSystem
from repro.relational import Database, Table
from repro.retriever import PneumaRetriever, table_payload


@pytest.fixture
def lake():
    db = Database("lake")
    db.register(
        Table.from_columns(
            "orders",
            {
                "country": ["Germany", "Japan", "Germany"],
                "price": [100.0, 200.0, 300.0],
                "order_date": [datetime.date(2024, 1, d) for d in (1, 2, 3)],
            },
        )
    )
    return db


def make_components(lake):
    llm = build_seeker_llm()
    state = SharedState()
    materializer = Materializer(llm, lake, state)
    ir = IRSystem(retriever=PneumaRetriever(lake))
    conductor = Conductor(llm, ir, state, materializer)
    return conductor, materializer, state


class TestConductorLoop:
    def test_turn_ends_with_message(self, lake):
        conductor, _, _ = make_components(lake)
        log = conductor.handle_turn("What is the average price?")
        assert log.reply
        assert log.actions[-1]["kind"] == "message_user"

    def test_working_memory_persists_across_turns(self, lake):
        conductor, _, _ = make_components(lake)
        conductor.handle_turn("what data do we have on orders?")
        docs_after_first = set(conductor.docs)
        conductor.handle_turn("average price for Germany?")
        assert docs_after_first <= set(conductor.docs)

    def test_grounding_stores_full_values(self, lake):
        conductor, _, _ = make_components(lake)
        conductor.handle_turn("What is the average price for Germany?")
        assert "orders" in conductor.grounded
        assert "Germany" in conductor.grounded["orders"]["country"]

    def test_redefined_spec_invalidates_materialization(self, lake):
        conductor, _, state = make_components(lake)
        conductor.handle_turn("what orders data is there?")
        assert state.is_materialized("orders_target")
        first = state.materialized.resolve_table("orders_target")
        conductor.handle_turn("What is the average price for Germany?")
        second = state.materialized.resolve_table("orders_target")
        assert second.column_names() != first.column_names()

    def test_thoughts_are_recorded(self, lake):
        conductor, _, _ = make_components(lake)
        log = conductor.handle_turn("average price?")
        assert all(isinstance(t, str) and t for t in log.thoughts)


class TestMaterializer:
    def _spec(self, columns):
        return TargetTable(
            name="orders_target",
            columns=[TargetColumn(c, "DOUBLE") for c in columns],
            base_tables=["orders"],
        )

    def test_success_records_state(self, lake):
        _, materializer, state = make_components(lake)
        docs = [{"doc_id": "table:orders", "kind": "table", "title": "orders",
                 "text": "", "payload": table_payload(lake.resolve_table("orders"))}]
        outcome = materializer.materialize(self._spec(["price"]), None, docs)
        assert outcome.ok
        assert outcome.attempts == 1
        assert state.is_materialized("orders_target")

    def test_repair_recovers_from_bad_column(self, lake):
        _, materializer, state = make_components(lake)
        docs = [{"doc_id": "table:orders", "kind": "table", "title": "orders",
                 "text": "", "payload": table_payload(lake.resolve_table("orders"))}]
        # 'ghost' cannot be selected; attempt 1 fails, repair drops the
        # select op, attempt 2 succeeds.
        outcome = materializer.materialize(self._spec(["price", "ghost"]), None, docs)
        assert outcome.ok
        assert outcome.attempts == 2
        assert len(outcome.programs) == 2

    def test_exhausted_attempts_reports_error(self, lake):
        _, materializer, state = make_components(lake)
        spec = TargetTable(name="orders_target", columns=[], base_tables=["no_such_table"])
        outcome = materializer.materialize(spec, None, [])
        assert not outcome.ok
        assert outcome.error
        assert outcome.attempts == Materializer.MAX_ATTEMPTS


class TestSessionAnswerValue:
    def test_non_scalar_result_gives_none(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit("show me the orders data")
        # Browsing views return multiple rows/columns, not a scalar answer.
        assert session.answer_value is None
