"""Unit tests for convergence concept helpers."""

from repro.core import Concept, concept_mentioned, coverage, uncovered


class TestConceptMentioned:
    def test_exact(self):
        assert concept_mentioned("potassium", "average potassium levels")

    def test_inflected(self):
        assert concept_mentioned("linearly interpolated", "with linear interpolation")

    def test_multiword_requires_all(self):
        assert not concept_mentioned("world heritage", "heritage sites only")

    def test_empty_phrase_false(self):
        assert not concept_mentioned("", "anything")


class TestCoverage:
    CONCEPTS = [Concept("potassium"), Concept("maltese", "value"), Concept("sites", "seed")]

    def test_full(self):
        text = "potassium at maltese sites"
        assert coverage(self.CONCEPTS, text) == 1.0

    def test_partial(self):
        assert coverage(self.CONCEPTS, "potassium only") == 1 / 3

    def test_no_concepts_is_one(self):
        assert coverage([], "whatever") == 1.0

    def test_uncovered_lists_missing(self):
        missing = uncovered(self.CONCEPTS, "potassium only")
        assert {c.token for c in missing} == {"maltese", "sites"}

    def test_concept_json(self):
        assert Concept("x", "seed").to_json() == {"token": "x", "kind": "seed"}
