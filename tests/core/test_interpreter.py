"""Unit tests for the pipeline interpreter (the Python-interpreter tool)."""

import datetime

import pytest

from repro.core import InterpreterError, PipelineInterpreter
from repro.relational import Database, Table


@pytest.fixture
def source():
    db = Database("lake")
    db.register(
        Table.from_columns(
            "samples",
            {
                "site_id": [1, 2, 1, 3],
                "region": ["Malta", "Gozo", "Malta", "Gozo"],
                "day": [
                    datetime.date(2020, 1, 1),
                    datetime.date(2020, 1, 2),
                    datetime.date(2020, 1, 3),
                    datetime.date(2020, 1, 4),
                ],
                "value": [1.0, 2.0, None, 4.0],
            },
        )
    )
    db.register(
        Table.from_columns("sites", {"site_id": [1, 2], "name": ["north", "south"]})
    )
    return db


def run(source, program):
    return PipelineInterpreter(source).run(program)


class TestBasicOps:
    def test_load_result(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        assert result.tables["out"].num_rows == 4
        assert len(result.trace) == 2

    def test_select(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "select", "frame": "main", "columns": ["region", "value"]},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        assert result.tables["out"].column_names() == ["region", "value"]

    def test_filter_equals_case_insensitive(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "filter_equals", "frame": "main", "column": "region", "value": "malta"},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        assert result.tables["out"].num_rows == 2

    def test_join(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "load", "table": "sites", "as": "dim"},
            {"op": "join", "left": "main", "right": "dim",
             "left_on": "site_id", "right_on": "site_id", "as": "main"},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        out = result.tables["out"]
        assert out.num_rows == 3  # site 3 has no match
        assert "name" in out.column_names()

    def test_interpolate_sorts_and_fills(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "interpolate", "frame": "main", "column": "value", "order_by": "day"},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        values = result.tables["out"].column_values("value")
        assert values == [1.0, 2.0, 3.0, 4.0]

    def test_derive_multiply(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "derive", "frame": "main", "new_column": "double",
             "operator": "*", "left": {"col": "value"}, "right": {"lit": 2}},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        assert result.tables["out"].column_values("double") == [2.0, 4.0, None, 8.0]

    def test_derive_column_minus_column(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "derive", "frame": "main", "new_column": "zero",
             "operator": "-", "left": {"col": "value"}, "right": {"col": "value"}},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        assert result.tables["out"].column_values("zero") == [0.0, 0.0, None, 0.0]

    def test_derive_missing_operator_field(self, source):
        with pytest.raises(InterpreterError) as err:
            run(source, [
                {"op": "load", "table": "samples", "as": "main"},
                {"op": "derive", "frame": "main", "new_column": "d",
                 "left": {"col": "value"}, "right": {"lit": 2}},
                {"op": "result", "frame": "main", "name": "out"},
            ])
        assert "missing fields" in str(err.value)

    def test_derive_bad_operand(self, source):
        with pytest.raises(InterpreterError):
            run(source, [
                {"op": "load", "table": "samples", "as": "main"},
                {"op": "derive", "frame": "main", "new_column": "d",
                 "operator": "*", "left": "value", "right": {"lit": 2}},
                {"op": "result", "frame": "main", "name": "out"},
            ])

    def test_add_from_records(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {
                "op": "add_from_records", "frame": "main",
                "records": [{"country": "Malta", "tariff": 0.15}],
                "key": "region", "record_key": "country",
                "value_field": "tariff", "new_column": "tariff",
            },
            {"op": "result", "frame": "main", "name": "out"},
        ])
        tariffs = result.tables["out"].column_values("tariff")
        assert tariffs == [0.15, None, 0.15, None]

    def test_parse_dates(self):
        db = Database()
        db.register(Table.from_columns("t", {"when": ["March 4, 2021", "2020-01-01"]}))
        result = run(db, [
            {"op": "load", "table": "t", "as": "main"},
            {"op": "parse_dates", "frame": "main", "column": "when"},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        assert result.tables["out"].column_values("when") == [
            datetime.date(2021, 3, 4),
            datetime.date(2020, 1, 1),
        ]

    def test_sort_rename_limit_filter_not_null(self, source):
        result = run(source, [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "filter_not_null", "frame": "main", "columns": ["value"]},
            {"op": "sort", "frame": "main", "by": ["value"], "ascending": False},
            {"op": "rename", "frame": "main", "mapping": {"value": "reading"}},
            {"op": "limit", "frame": "main", "n": 2},
            {"op": "result", "frame": "main", "name": "out"},
        ])
        out = result.tables["out"]
        assert out.column_values("reading") == [4.0, 2.0]


class TestErrors:
    def test_empty_program(self, source):
        with pytest.raises(InterpreterError):
            run(source, [])

    def test_unknown_op(self, source):
        with pytest.raises(InterpreterError) as err:
            run(source, [{"op": "quantum_join"}])
        assert "unknown op" in str(err.value)

    def test_missing_fields(self, source):
        with pytest.raises(InterpreterError) as err:
            run(source, [{"op": "load"}])
        assert "missing fields" in str(err.value)

    def test_error_carries_step_and_op(self, source):
        program = [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "select", "frame": "main", "columns": ["ghost"]},
            {"op": "result", "frame": "main", "name": "out"},
        ]
        with pytest.raises(InterpreterError) as err:
            run(source, program)
        assert err.value.step == 1
        assert err.value.op == "select"
        assert "ghost" in str(err.value)

    def test_undefined_frame(self, source):
        with pytest.raises(InterpreterError):
            run(source, [{"op": "result", "frame": "nope", "name": "out"}])

    def test_no_result_op(self, source):
        with pytest.raises(InterpreterError) as err:
            run(source, [{"op": "load", "table": "samples", "as": "main"}])
        assert "no result table" in str(err.value)

    def test_unknown_table(self, source):
        with pytest.raises(InterpreterError):
            run(source, [
                {"op": "load", "table": "ghost_table", "as": "main"},
                {"op": "result", "frame": "main", "name": "out"},
            ])
