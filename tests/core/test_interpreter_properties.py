"""Property tests: pipeline programs behave like their SQL equivalents."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import PipelineInterpreter
from repro.relational import Database, Table

values = st.lists(
    st.one_of(st.none(), st.integers(min_value=-3, max_value=3)),
    min_size=0,
    max_size=8,
)
labels = st.lists(st.sampled_from(["a", "b", "c"]), min_size=0, max_size=8)


def make_source(xs, gs):
    n = min(len(xs), len(gs))
    db = Database()
    db.register(Table.from_columns("t", {"g": gs[:n], "x": xs[:n]}))
    return db


@given(values, labels)
def test_filter_equals_matches_sql_where(xs, gs):
    db = make_source(xs, gs)
    result = PipelineInterpreter(db).run(
        [
            {"op": "load", "table": "t", "as": "main"},
            {"op": "filter_equals", "frame": "main", "column": "g", "value": "a"},
            {"op": "result", "frame": "main", "name": "out"},
        ]
    )
    sql = db.execute("SELECT * FROM t WHERE g = 'a'")
    assert result.tables["out"].rows == sql.rows


@given(values, labels)
def test_filter_not_null_matches_sql(xs, gs):
    db = make_source(xs, gs)
    result = PipelineInterpreter(db).run(
        [
            {"op": "load", "table": "t", "as": "main"},
            {"op": "filter_not_null", "frame": "main", "columns": ["x"]},
            {"op": "result", "frame": "main", "name": "out"},
        ]
    )
    sql = db.execute("SELECT * FROM t WHERE x IS NOT NULL")
    assert result.tables["out"].rows == sql.rows


@given(values, labels)
def test_select_projects_like_sql(xs, gs):
    db = make_source(xs, gs)
    result = PipelineInterpreter(db).run(
        [
            {"op": "load", "table": "t", "as": "main"},
            {"op": "select", "frame": "main", "columns": ["x"]},
            {"op": "result", "frame": "main", "name": "out"},
        ]
    )
    sql = db.execute("SELECT x FROM t")
    assert result.tables["out"].rows == sql.rows


@given(values, labels)
def test_derive_matches_sql_arithmetic(xs, gs):
    db = make_source(xs, gs)
    result = PipelineInterpreter(db).run(
        [
            {"op": "load", "table": "t", "as": "main"},
            {"op": "derive", "frame": "main", "new_column": "y",
             "operator": "*", "left": {"col": "x"}, "right": {"lit": 2}},
            {"op": "select", "frame": "main", "columns": ["y"]},
            {"op": "result", "frame": "main", "name": "out"},
        ]
    )
    sql = db.execute("SELECT x * 2 AS y FROM t")
    assert result.tables["out"].rows == sql.rows


@given(values, labels)
def test_pipeline_then_sql_aggregate_consistency(xs, gs):
    """The Seeker invariant: filtering in the pipeline and re-filtering in Q
    is idempotent — Q over the filtered table equals one-shot SQL."""
    db = make_source(xs, gs)
    result = PipelineInterpreter(db).run(
        [
            {"op": "load", "table": "t", "as": "main"},
            {"op": "filter_equals", "frame": "main", "column": "g", "value": "b"},
            {"op": "result", "frame": "main", "name": "target"},
        ]
    )
    scratch = Database()
    scratch.register(result.tables["target"])
    via_pipeline = scratch.query_value("SELECT SUM(x) FROM target WHERE g = 'b'")
    direct = db.query_value("SELECT SUM(x) FROM t WHERE g = 'b'")
    assert via_pipeline == direct
