"""Integration tests: the full Pneuma-Seeker session over a small lake."""

import datetime

import pytest

from repro.core import SeekerSession
from repro.relational import Database, Table


@pytest.fixture
def lake():
    db = Database("lake")
    db.register(
        Table.from_columns(
            "readings",
            {
                "station": ["North", "North", "South", "North", "South"],
                "day": [datetime.date(2020, 1, d) for d in (1, 3, 5, 7, 9)],
                "ozone": [10.0, None, 30.0, 14.0, 18.0],
                "pm25": [5.0, 6.0, 7.0, 8.0, 9.0],
            },
        )
    )
    db.register(
        Table.from_columns(
            "stations",
            {"station": ["North", "South"], "operator": ["Observatory", "Agency"]},
        )
    )
    return db


class TestSession:
    def test_exploration_surfaces_variables(self, lake):
        session = SeekerSession(lake, enable_web=False)
        response = session.submit("What data do we have about readings?")
        assert "ozone" in response.message
        assert "STATE" in response.state_view

    def test_simple_aggregate(self, lake):
        session = SeekerSession(lake, enable_web=False)
        answer = session.ask("What is the average pm25 across all readings?")
        assert answer == pytest.approx(7.0)

    def test_grounded_filter(self, lake):
        session = SeekerSession(lake, enable_web=False)
        answer = session.ask("What is the average pm25 at the North station?")
        assert answer == pytest.approx((5.0 + 6.0 + 8.0) / 3)

    def test_action_limit_respected(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit("What is the average pm25 at the North station?")
        log = session.conductor.turns[-1]
        # The forced message (if any) comes after at most ACTION_LIMIT actions.
        assert len(log.actions) <= session.conductor.ACTION_LIMIT + 1

    def test_iterative_refinement_updates_state(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit("Show me what ozone data exists")
        v1 = session.state.version
        session.submit("What is the maximum ozone at the South station?")
        assert session.state.version > v1
        assert session.answer_value == 30.0

    def test_state_q_is_visible(self, lake):
        session = SeekerSession(lake, enable_web=False)
        response = session.submit("What is the average pm25?")
        assert "SELECT" in response.state_view

    def test_turn_log_records_thoughts_and_actions(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit("average pm25 please")
        log = session.conductor.turns[-1]
        assert log.thoughts
        assert log.actions[0]["kind"] == "retrieve"
        assert log.actions[-1]["kind"] == "message_user"

    def test_empty_message_rejected(self, lake):
        session = SeekerSession(lake, enable_web=False)
        with pytest.raises(ValueError):
            session.submit("   ")

    def test_usage_metered(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit("What is the average pm25?")
        usage = session.llm.ledger.total()
        assert usage.prompt_tokens > 0
        assert session.llm.ledger.num_calls("conductor") >= 2

    def test_virtual_latency_accumulates(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit("What is the average pm25?")
        assert session.llm.clock.now > 0


class TestKnowledgeCapture:
    def test_clarifications_are_captured(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit(
            "Assume ozone readings should be compared relative to the previous day."
        )
        assert len(session.knowledge_db) == 1

    def test_plain_questions_not_captured(self, lake):
        session = SeekerSession(lake, enable_web=False)
        session.submit("What is the average pm25?")
        assert len(session.knowledge_db) == 0

    def test_knowledge_transfers_across_sessions(self, lake):
        from repro.ir import DocumentDatabase

        shared = DocumentDatabase()
        first = SeekerSession(lake, enable_web=False, knowledge=shared, user="u1")
        first.submit("Assume pm25 analyses must focus on the North station readings.")
        second = SeekerSession(lake, enable_web=False, knowledge=shared, user="u2")
        # The captured clarification is retrievable in the new session.
        result = second.ir.retrieve("average pm25 analysis")
        assert result.knowledge()
        assert "North station" in result.knowledge()[0].text


class TestInterpolationFlow:
    def test_interpolated_first_last(self, lake):
        session = SeekerSession(lake, enable_web=False)
        answer = session.ask(
            "What is the average ozone from the first and last day at the North "
            "station? Assume ozone is linearly interpolated between samples."
        )
        # North rows by day: 10.0, None, 14.0 -> interpolated None = 12.0;
        # first=10.0, last=14.0 -> 12.0
        assert answer == pytest.approx(12.0)
        materialized = session.state.materialized.resolve_table("readings_target")
        values = materialized.column_values("ozone")
        assert None not in values[1:-1]
