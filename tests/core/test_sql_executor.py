"""Unit tests for the SQL Executor tool's error-capture contract."""

from repro.core import SQLExecutor
from repro.relational import Database, Table


def make_db():
    db = Database()
    db.register(Table.from_columns("t", {"x": [1, 2, 3]}))
    return db


class TestSQLExecutor:
    def test_success(self):
        result = SQLExecutor(make_db()).execute("SELECT SUM(x) FROM t")
        assert result.ok
        assert result.table.single_value() == 6

    def test_error_captured_not_raised(self):
        result = SQLExecutor(make_db()).execute("SELECT ghost FROM t")
        assert not result.ok
        assert "BindError" in result.error
        assert result.table is None

    def test_syntax_error_captured(self):
        result = SQLExecutor(make_db()).execute("SELEC 1")
        assert not result.ok
        assert "ParseError" in result.error

    def test_execute_all_stops_at_first_error(self):
        executor = SQLExecutor(make_db())
        results = executor.execute_all(
            ["SELECT 1", "SELECT ghost FROM t", "SELECT 2"]
        )
        assert len(results) == 2
        assert results[0].ok and not results[1].ok

    def test_execute_all_runs_in_order(self):
        db = make_db()
        executor = SQLExecutor(db)
        results = executor.execute_all(
            ["CREATE TABLE t2 AS SELECT x * 2 AS y FROM t", "SELECT SUM(y) FROM t2"]
        )
        assert all(r.ok for r in results)
        assert results[-1].table.single_value() == 12


class TestPlanCacheWiring:
    def test_repeated_query_hits_plan_cache(self):
        db = make_db()
        executor = SQLExecutor(db)
        before = executor.plan_cache_stats()
        for _ in range(3):
            assert executor.execute("SELECT SUM(x) FROM t").ok
        stats = executor.plan_cache_stats()
        assert stats["misses"] - before["misses"] == 1
        assert stats["hits"] - before["hits"] == 2

    def test_errors_do_not_poison_the_cache(self):
        db = make_db()
        executor = SQLExecutor(db)
        assert not executor.execute("SELECT ghost FROM t").ok
        assert not executor.execute("SELECT ghost FROM t").ok
        stats = executor.plan_cache_stats()
        assert stats["hits"] == 0
        assert stats["size"] == 0
