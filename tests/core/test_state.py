"""Unit tests for the shared (T, Q) state."""

import pytest

from repro.core import SharedState, TargetColumn, TargetTable
from repro.relational import Table


@pytest.fixture
def spec():
    return TargetTable(
        name="orders_target",
        columns=[TargetColumn("price", "DOUBLE", "orders.price")],
        base_tables=["orders"],
        notes="avg price",
    )


class TestMutation:
    def test_set_table_bumps_version(self, spec):
        state = SharedState()
        v0 = state.version
        state.set_table(spec)
        assert state.version == v0 + 1
        assert "orders_target" in state.tables

    def test_set_queries(self):
        state = SharedState()
        state.set_queries(["SELECT 1"])
        assert state.queries == ["SELECT 1"]

    def test_record_materialized(self, spec):
        state = SharedState()
        state.set_table(spec)
        state.record_materialized(Table.from_columns("orders_target", {"price": [1.0]}))
        assert state.is_materialized("orders_target")

    def test_remove_table_drops_materialized(self, spec):
        state = SharedState()
        state.set_table(spec)
        state.record_materialized(Table.from_columns("orders_target", {"price": [1.0]}))
        state.remove_table("orders_target")
        assert not state.is_materialized("orders_target")
        assert "orders_target" not in state.tables

    def test_record_result(self):
        state = SharedState()
        result = Table.from_columns("result", {"answer": [42]})
        state.record_result(result)
        assert state.last_result is result

    def test_clear(self, spec):
        state = SharedState()
        state.set_table(spec)
        state.set_queries(["SELECT 1"])
        state.clear()
        assert not state.tables and not state.queries

    def test_changelog_and_diff(self, spec):
        state = SharedState()
        state.set_table(spec)
        v = state.version
        state.set_queries(["SELECT 1"])
        diff = state.diff_summary(since_version=v)
        assert len(diff) == 1
        assert "updated Q" in diff[0]


class TestViews:
    def test_to_json(self, spec):
        state = SharedState()
        state.set_table(spec)
        state.set_queries(["SELECT AVG(price) FROM orders_target"])
        payload = state.to_json()
        assert payload["T"][0]["name"] == "orders_target"
        assert payload["Q"] == ["SELECT AVG(price) FROM orders_target"]
        assert payload["materialized"] == []

    def test_render_contains_t_and_q(self, spec):
        state = SharedState()
        state.set_table(spec)
        state.set_queries(["SELECT 1"])
        view = state.render()
        assert "T[orders_target]" in view
        assert "SELECT 1" in view

    def test_render_empty_state(self):
        view = SharedState().render()
        assert "not yet defined" in view
        assert "(empty)" in view

    def test_render_shows_materialized_sample(self, spec):
        state = SharedState()
        state.set_table(spec)
        state.record_materialized(Table.from_columns("orders_target", {"price": [1.5]}))
        view = state.render()
        assert "materialized (1 rows)" in view
        assert "1.5" in view

    def test_target_table_json_round_trip(self, spec):
        assert TargetTable.from_json(spec.to_json()) == spec
