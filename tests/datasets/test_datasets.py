"""Unit tests for the benchmark datasets (shape, determinism, ground truth)."""

import pytest

from repro.datasets import (
    TARIFF_RECORDS,
    answers_match,
    build_procurement_lake,
    build_tariff_web,
    load_archaeology,
    load_environment,
    tariff_impact_ground_truth,
)


@pytest.fixture(scope="module")
def arch():
    return load_archaeology(scale=0.02)


@pytest.fixture(scope="module")
def env():
    return load_environment(scale=0.02)


class TestShape:
    def test_archaeology_table1_shape(self, arch):
        stats = arch.table_stats()
        assert stats["num_tables"] == 5
        assert stats["avg_cols"] == 16.0
        assert stats["num_questions"] == 12

    def test_environment_table1_shape(self, env):
        stats = env.table_stats()
        assert stats["num_tables"] == 36
        assert stats["avg_cols"] == 10.0
        assert stats["num_questions"] == 20

    def test_full_scale_row_counts_match_paper(self):
        # Row counts at scale=1.0 must average to the paper's Table 1 values;
        # verify arithmetically without building the full lakes.
        arch_rows = [24_000, 20_000, 150, 9_000, 3_295]
        assert round(sum(arch_rows) / len(arch_rows)) == 11_289
        env_rows = [12_000] * 12 + [8_000] * 12 + [9_076] + [9_072] * 9 + [400, 40]
        assert round(sum(env_rows) / len(env_rows)) == 9_199

    def test_question_design_mix(self, arch, env):
        arch_designs = [q.design for q in arch.questions]
        assert arch_designs.count("both") == 3
        assert arch_designs.count("seeker") == 3
        assert arch_designs.count("none") == 6
        env_designs = [q.design for q in env.questions]
        assert env_designs.count("both") == 4
        assert env_designs.count("seeker") == 7
        assert env_designs.count("none") == 9


class TestDeterminism:
    def test_same_seed_same_lake(self):
        a = load_archaeology(scale=0.02, seed=7)
        b = load_archaeology(scale=0.02, seed=7)
        ta = a.lake.resolve_table("field_samples")
        tb = b.lake.resolve_table("field_samples")
        assert ta.rows[:50] == tb.rows[:50]

    def test_different_seed_differs(self):
        a = load_archaeology(scale=0.02, seed=7)
        b = load_archaeology(scale=0.02, seed=8)
        assert (
            a.lake.resolve_table("field_samples").rows
            != b.lake.resolve_table("field_samples").rows
        )


class TestGroundTruth:
    def test_all_archaeology_truths_computable(self, arch):
        for q in arch.questions:
            truth = q.ground_truth(arch.lake)
            assert truth is not None, q.qid

    def test_all_environment_truths_computable(self, env):
        for q in env.questions:
            truth = q.ground_truth(env.lake)
            assert truth is not None, q.qid

    def test_region_argmax_is_string(self, env):
        q = next(x for x in env.questions if x.qid == "env-13")
        assert isinstance(q.ground_truth(env.lake), str)

    def test_sample_visibility_contract(self, arch):
        """The design contract: 'Bronze' is sample-visible, 'Hellenistic' is not."""
        artifacts = arch.lake.resolve_table("artifacts")
        idx_mat = artifacts.schema.index_of("material")
        idx_per = artifacts.schema.index_of("period")
        first3_materials = {r[idx_mat] for r in artifacts.rows[:3]}
        first3_periods = {r[idx_per] for r in artifacts.rows[:3]}
        assert "Bronze" in first3_materials
        assert "Hellenistic" not in first3_periods

    def test_interpolation_changes_the_answer(self, env):
        """env-05's boundary rows include a NULL, so interpolation matters."""
        lake = env.lake
        q5 = next(x for x in env.questions if x.qid == "env-05")
        interpolated = q5.ground_truth(lake)
        raw = lake.query_value(
            "SELECT ROUND(AVG(dissolved_oxygen), 4) FROM water_quality_2016 "
            "WHERE sample_date = (SELECT MIN(sample_date) FROM water_quality_2016) "
            "OR sample_date = (SELECT MAX(sample_date) FROM water_quality_2016)"
        )
        assert interpolated != raw


class TestAnswersMatch:
    def test_numeric_tolerance(self):
        assert answers_match(100.0, 100.0 + 1e-8)
        assert not answers_match(100.0, 101.0)

    def test_zero_expected(self):
        assert answers_match(0, 0.0)
        assert not answers_match(0, 0.5)

    def test_none_matching(self):
        assert answers_match(None, None)
        assert not answers_match(1.0, None)

    def test_string_answers(self):
        assert answers_match("coastal", "coastal")
        assert not answers_match("coastal", "inland")

    def test_bool_is_not_numeric(self):
        assert not answers_match(1.0, True)


class TestProcurement:
    def test_lake_contents(self):
        lake = build_procurement_lake(scale=0.1)
        assert set(lake.table_names()) == {
            "department_budgets", "purchase_orders", "suppliers",
        }

    def test_web_corpus_searchable(self):
        web = build_tariff_web()
        docs = web.search("new import tariff rates by country", k=1)
        assert docs[0].payload["records"] == TARIFF_RECORDS

    def test_tariff_ground_truth(self):
        lake = build_procurement_lake(scale=0.1)
        new_cost, delta = tariff_impact_ground_truth(lake, "Germany")
        avg = lake.query_value(
            "SELECT AVG(price) FROM purchase_orders WHERE country = 'Germany'"
        )
        assert new_cost == pytest.approx(avg * 1.10)
        assert delta == pytest.approx(avg * 0.10)
