"""Unit tests for the evaluation harness and report rendering."""

import pytest

from repro.datasets import load_archaeology
from repro.eval import (
    evaluate_accuracy,
    evaluate_convergence,
    evaluate_costs,
    render_context_overflow,
    render_convergence_figure,
    render_table1,
    render_table2,
    render_table3,
)
from repro.eval.accuracy_eval import AccuracyResult, ContextOverflowResult
from repro.eval.convergence_eval import ConvergenceResult
from repro.eval.cost_eval import CostRow
from repro.llm.pricing import MODEL_PRICES
from repro.llm.tokens import Usage


@pytest.fixture(scope="module")
def arch():
    ds = load_archaeology(scale=0.02)
    ds.questions = ds.questions[:2]  # keep harness tests fast
    return ds


class TestAccuracyEval:
    def test_correct_and_incorrect(self, arch):
        truths = {q.qid: q.ground_truth(arch.lake) for q in arch.questions}
        results = evaluate_accuracy(
            arch,
            {
                "oracle": lambda q: truths[q.qid],
                "dunno": lambda q: None,
            },
        )
        by_name = {r.system: r for r in results}
        assert by_name["oracle"].percentage == 100.0
        assert by_name["dunno"].percentage == 0.0

    def test_crash_counts_as_wrong(self, arch):
        def boom(question):
            raise RuntimeError("kaput")

        results = evaluate_accuracy(arch, {"crasher": boom})
        assert results[0].correct == 0
        assert all("kaput" in o.error for o in results[0].outcomes)


class TestConvergenceEval:
    def test_runs_against_factory(self, arch):
        class Yes:
            name = "yes-system"
            kind = "static"

            def respond(self, message):
                return "raw output"

        results = evaluate_convergence(arch, {"yes-system": lambda: Yes()}, max_turns=3)
        assert results[0].total == 2
        assert results[0].median_turns == 3.0  # static never converges here


class TestCostEval:
    def test_cost_row_structure(self, arch):
        row = evaluate_costs(arch, max_turns=3)
        assert row.dataset == "archaeology"
        assert row.avg_input_tokens > 0
        assert set(row.costs) == set(MODEL_PRICES)
        # O4-mini cost must follow its price sheet exactly.
        o4 = row.costs["O4-mini"]
        assert o4.input_cost == pytest.approx(
            int(row.avg_input_tokens) * 1.10 / 1_000_000
        )


class TestReports:
    def test_table1(self):
        text = render_table1(
            [
                {"dataset": "archaeology", "num_tables": 5, "avg_rows": 11289.0, "avg_cols": 16.0},
                {"dataset": "environment", "num_tables": 36, "avg_rows": 9199.0, "avg_cols": 10.0},
            ]
        )
        assert "11,289" in text
        assert "36" in text

    def test_table2(self):
        usage = Usage(248_351, 2_854)
        row = CostRow(
            dataset="archaeology",
            avg_input_tokens=usage.prompt_tokens,
            avg_output_tokens=usage.completion_tokens,
            costs={name: price.cost(usage) for name, price in MODEL_PRICES.items()},
        )
        text = render_table2([row])
        assert "248,351" in text
        # O4-mini on the paper's token counts lands at ~$0.27 in.
        assert "$0.27" in text

    def test_table3(self):
        results = [
            AccuracyResult("LlamaIndex", "archaeology", 12, 0),
            AccuracyResult("Pneuma-Seeker", "archaeology", 12, 5),
        ]
        text = render_table3(results)
        assert "0.00%" in text
        assert "41.67%" in text

    def test_figure_renders_scatter(self):
        results = [
            ConvergenceResult("FTS", "archaeology", 12, 1, 15.0),
            ConvergenceResult("Pneuma-Seeker", "archaeology", 12, 8, 5.0),
        ]
        text = render_convergence_figure(results, "Figure 4")
        assert "Figure 4" in text
        assert "[1] FTS" in text
        assert "median turns" in text

    def test_context_overflow_report(self):
        text = render_context_overflow(
            [ContextOverflowResult("archaeology", 12, 6, 0)]
        )
        assert "6/12" in text
