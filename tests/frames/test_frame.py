"""Unit tests for DataFrame operations."""

import pytest

from repro.frames import DataFrame, FrameError, Series
from repro.relational import Table


@pytest.fixture
def df():
    return DataFrame(
        {
            "id": [1, 2, 3, 4],
            "group": ["a", "b", "a", "b"],
            "value": [10.0, 20.0, 30.0, None],
        }
    )


class TestConstruction:
    def test_unequal_lengths_raise(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1], "b": [1, 2]})

    def test_from_records(self):
        df = DataFrame.from_records([{"a": 1}, {"a": 2, "b": 3}])
        assert df.columns == ["a", "b"]
        assert df["b"].tolist() == [None, 3]

    def test_table_round_trip(self, df):
        table = df.to_table("t")
        assert isinstance(table, Table)
        back = DataFrame.from_table(table)
        assert back.to_dicts() == df.to_dicts()

    def test_shape_and_len(self, df):
        assert df.shape == (4, 3)
        assert len(df) == 4


class TestSelectionAndFilter:
    def test_getitem_column(self, df):
        assert isinstance(df["id"], Series)

    def test_getitem_missing_raises(self, df):
        with pytest.raises(FrameError):
            df["nope"]

    def test_getitem_mask(self, df):
        out = df[df["group"] == "a"]
        assert out["id"].tolist() == [1, 3]

    def test_getitem_list(self, df):
        assert df[["id", "value"]].columns == ["id", "value"]

    def test_filter_null_mask_drops(self, df):
        out = df.filter(df["value"] > 15)
        assert out["id"].tolist() == [2, 3]  # NULL comparison row dropped

    def test_select_missing_raises(self, df):
        with pytest.raises(FrameError):
            df.select(["id", "ghost"])

    def test_drop(self, df):
        assert df.drop(["value"]).columns == ["id", "group"]

    def test_head_tail(self, df):
        assert df.head(2)["id"].tolist() == [1, 2]
        assert df.tail(2)["id"].tolist() == [3, 4]


class TestAssignRenameSort:
    def test_assign_series(self, df):
        out = df.assign(double=df["value"] * 2)
        assert out["double"].tolist() == [20.0, 40.0, 60.0, None]

    def test_assign_callable(self, df):
        out = df.assign(double=lambda d: d["value"] * 2)
        assert out["double"][0] == 20.0

    def test_assign_length_mismatch_raises(self, df):
        with pytest.raises(FrameError):
            df.assign(bad=[1, 2])

    def test_rename(self, df):
        assert "ident" in df.rename({"id": "ident"}).columns

    def test_sort_values(self, df):
        out = df.sort_values("value", ascending=False)
        assert out["id"].tolist() == [3, 2, 1, 4]  # NULL last

    def test_sort_multi_key(self, df):
        out = df.sort_values(["group", "id"], ascending=[True, False])
        assert out["id"].tolist() == [3, 1, 4, 2]


class TestNullHandling:
    def test_dropna(self, df):
        assert len(df.dropna()) == 3

    def test_dropna_subset(self, df):
        assert len(df.dropna(subset=["group"])) == 4

    def test_fillna(self, df):
        assert df.fillna(0.0)["value"].tolist() == [10.0, 20.0, 30.0, 0.0]

    def test_drop_duplicates(self):
        df = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert len(df.drop_duplicates()) == 2

    def test_drop_duplicates_subset(self):
        df = DataFrame({"a": [1, 1, 2], "b": ["x", "y", "z"]})
        assert len(df.drop_duplicates(subset=["a"])) == 2


class TestMerge:
    @pytest.fixture
    def right(self):
        return DataFrame({"group": ["a", "c"], "label": ["alpha", "gamma"]})

    def test_inner(self, df, right):
        out = df.merge(right, on="group")
        assert sorted(out["id"].tolist()) == [1, 3]
        assert set(out.columns) == {"id", "group", "value", "label"}

    def test_left(self, df, right):
        out = df.merge(right, on="group", how="left")
        assert len(out) == 4
        assert out.filter(out["group"] == "b")["label"].tolist() == [None, None]

    def test_right(self, df, right):
        out = df.merge(right, on="group", how="right")
        assert "gamma" in out["label"].tolist()

    def test_outer(self, df, right):
        out = df.merge(right, on="group", how="outer")
        assert len(out) == 5  # 2 a-matches + 2 unmatched b + 1 unmatched c

    def test_left_on_right_on(self, df):
        other = DataFrame({"g": ["a"], "tag": ["T"]})
        out = df.merge(other, left_on="group", right_on="g")
        assert out["tag"].tolist() == ["T", "T"]

    def test_suffix_collision(self, df):
        other = DataFrame({"group": ["a"], "value": [99.0]})
        out = df.merge(other, on="group")
        assert "value_right" in out.columns

    def test_null_keys_never_match(self):
        left = DataFrame({"k": [None, 1]})
        right = DataFrame({"k": [None, 1], "v": ["x", "y"]})
        out = left.merge(right, on="k")
        assert out["v"].tolist() == ["y"]

    def test_missing_key_raises(self, df, right):
        with pytest.raises(FrameError):
            df.merge(right, on="nope")

    def test_bad_how_raises(self, df, right):
        with pytest.raises(FrameError):
            df.merge(right, on="group", how="sideways")


class TestConcat:
    def test_concat_aligns_columns(self):
        a = DataFrame({"x": [1], "y": ["p"]})
        b = DataFrame({"x": [2], "z": [True]})
        out = a.concat(b)
        assert out.columns == ["x", "y", "z"]
        assert out["y"].tolist() == ["p", None]
        assert out["z"].tolist() == [None, True]


class TestGroupBy:
    def test_agg_builtins(self, df):
        out = df.groupby("group").agg(
            total=("value", "sum"), n=("id", "count"), biggest=("value", "max")
        )
        rows = {r["group"]: r for r in out.to_dicts()}
        assert rows["a"]["total"] == 40.0
        assert rows["b"]["total"] == 20.0  # NULL skipped
        assert rows["a"]["n"] == 2

    def test_agg_callable(self, df):
        out = df.groupby("group").agg(spread=("value", lambda s: (s.max() or 0) - (s.min() or 0)))
        rows = {r["group"]: r["spread"] for r in out.to_dicts()}
        assert rows["a"] == 20.0

    def test_size(self, df):
        out = df.groupby("group").size()
        assert out["size"].tolist() == [2, 2]

    def test_apply(self, df):
        out = df.groupby("group").apply(lambda sub: {"first_id": sub["id"][0]})
        rows = {r["group"]: r["first_id"] for r in out.to_dicts()}
        assert rows == {"a": 1, "b": 2}

    def test_unknown_agg_raises(self, df):
        with pytest.raises(ValueError):
            df.groupby("group").agg(bad=("value", "frobnicate"))

    def test_unknown_key_raises(self, df):
        with pytest.raises(FrameError):
            df.groupby("ghost")

    def test_group_with_none_key(self):
        df = DataFrame({"k": ["a", None, "a"], "v": [1, 2, 3]})
        out = df.groupby("k").agg(total=("v", "sum"))
        rows = {r["k"]: r["total"] for r in out.to_dicts()}
        assert rows == {"a": 4, None: 2}
