"""Property-based tests: frames and the relational engine must agree.

The Materializer can express the same logical operation either as a
pipeline (frames) or as SQL (relational); these properties pin the two
execution paths to identical semantics.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.frames import DataFrame, Series
from repro.relational import Database, Table

values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
columns = st.lists(values, min_size=0, max_size=10)


def both_paths(xs):
    df = DataFrame({"x": xs})
    db = Database()
    db.register(Table.from_columns("t", {"x": xs}))
    return df, db


@given(columns)
def test_sum_agrees(xs):
    df, db = both_paths(xs)
    assert df["x"].sum() == db.query_value("SELECT SUM(x) FROM t")


@given(columns)
def test_mean_agrees(xs):
    df, db = both_paths(xs)
    frame_mean = df["x"].mean()
    sql_mean = db.query_value("SELECT AVG(x) FROM t")
    if frame_mean is None:
        assert sql_mean is None
    else:
        assert abs(frame_mean - sql_mean) < 1e-12


@given(columns)
def test_median_agrees(xs):
    df, db = both_paths(xs)
    assert df["x"].median() == db.query_value("SELECT MEDIAN(x) FROM t")


@given(columns)
def test_filter_agrees(xs):
    df, db = both_paths(xs)
    frame_kept = df.filter(df["x"] > 0)["x"].tolist()
    sql_kept = db.execute("SELECT x FROM t WHERE x > 0").column_values("x")
    assert frame_kept == sql_kept


@given(columns)
def test_dropna_matches_is_not_null(xs):
    df, db = both_paths(xs)
    assert (
        df.dropna()["x"].tolist()
        == db.execute("SELECT x FROM t WHERE x IS NOT NULL").column_values("x")
    )


@given(columns)
def test_sort_agrees_on_non_nulls(xs):
    df, db = both_paths(xs)
    frame_sorted = df.sort_values("x")["x"].tolist()
    sql_sorted = db.execute("SELECT x FROM t ORDER BY x").column_values("x")
    assert frame_sorted == sql_sorted  # both put NULLs last, stable


@given(columns, columns)
def test_merge_agrees_with_join_cardinality(xs, ys):
    left = DataFrame({"k": xs})
    right = DataFrame({"k": ys})
    db = Database()
    db.register(Table.from_columns("a", {"k": xs}))
    db.register(Table.from_columns("b", {"k": ys}))
    merged = left.merge(right, on="k")
    joined = db.query_value("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k")
    assert len(merged) == joined


@given(columns)
def test_groupby_count_agrees(xs):
    df, db = both_paths(xs)
    frame_counts = {
        r["x"]: r["n"] for r in df.groupby("x").agg(n=("x", "count")).to_dicts()
    }
    sql = db.execute("SELECT x, COUNT(x) AS n FROM t GROUP BY x")
    sql_counts = {row[0]: row[1] for row in sql.rows}
    assert frame_counts == sql_counts


@given(columns)
def test_table_round_trip_preserves_rows(xs):
    df = DataFrame({"x": xs, "y": [str(v) if v is not None else None for v in xs]})
    back = DataFrame.from_table(df.to_table("t"))
    assert back.to_dicts() == df.to_dicts()


@given(st.lists(st.one_of(st.none(), st.floats(min_value=-100, max_value=100)), max_size=12))
def test_interpolate_never_touches_known_values(xs):
    series = Series(xs)
    result = series.interpolate()
    for original, filled in zip(series, result):
        if original is not None:
            assert filled == original


@given(st.lists(st.one_of(st.none(), st.floats(min_value=-100, max_value=100)), max_size=12))
def test_interpolate_fills_within_bounds(xs):
    series = Series(xs)
    result = series.interpolate()
    known = [v for v in xs if v is not None]
    if len(known) >= 2:
        lo, hi = min(known), max(known)
        for value in result:
            if value is not None:
                assert lo - 1e-9 <= value <= hi + 1e-9
