"""Unit tests for Series: NULL-aware vector operations."""

import datetime

import pytest

from repro.frames import Series


class TestArithmetic:
    def test_add_scalar(self):
        assert (Series([1, 2, None]) + 1).tolist() == [2, 3, None]

    def test_add_series(self):
        assert (Series([1, 2]) + Series([10, 20])).tolist() == [11, 22]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Series([1]) + Series([1, 2])

    def test_subtraction_and_reflected(self):
        assert (10 - Series([1, 2])).tolist() == [9, 8]

    def test_multiplication_division(self):
        assert (Series([2, 4]) * 3).tolist() == [6, 12]
        assert (Series([2, 4]) / 2).tolist() == [1.0, 2.0]

    def test_negation(self):
        assert (-Series([1, None])).tolist() == [-1, None]


class TestComparisonsAndLogic:
    def test_comparison_propagates_null(self):
        assert (Series([1, None, 3]) > 2).tolist() == [False, None, True]

    def test_and_or(self):
        a = Series([True, True, False])
        b = Series([True, False, False])
        assert (a & b).tolist() == [True, False, False]
        assert (a | b).tolist() == [True, True, False]

    def test_invert(self):
        assert (~Series([True, None, False])).tolist() == [False, None, True]

    def test_isin(self):
        assert Series([1, 2, None]).isin([1]).tolist() == [True, False, None]


class TestTransforms:
    def test_map_skips_nulls(self):
        assert Series([1, None]).map(lambda v: v * 10).tolist() == [10, None]

    def test_fillna(self):
        assert Series([1, None]).fillna(0).tolist() == [1, 0]

    def test_astype(self):
        assert Series(["1", "2"]).astype(int).tolist() == [1, 2]

    def test_clip(self):
        assert Series([1, 5, 10]).clip(2, 8).tolist() == [2, 5, 8]

    def test_diff(self):
        assert Series([1, 3, 6]).diff().tolist() == [None, 2, 3]

    def test_shift(self):
        assert Series([1, 2, 3]).shift(1).tolist() == [None, 1, 2]
        assert Series([1, 2, 3]).shift(-1).tolist() == [2, 3, None]

    def test_cumsum(self):
        assert Series([1, 2, None, 3]).cumsum().tolist() == [1.0, 3.0, None, 6.0]


class TestInterpolate:
    def test_fills_gap_linearly(self):
        result = Series([0.0, None, None, 3.0]).interpolate()
        assert result.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_multiple_gaps(self):
        result = Series([0.0, None, 2.0, None, None, 5.0]).interpolate()
        assert result.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ends_stay_none(self):
        result = Series([None, 1.0, None, 3.0, None]).interpolate()
        assert result.tolist() == [None, 1.0, 2.0, 3.0, None]

    def test_all_none_unchanged(self):
        assert Series([None, None]).interpolate().tolist() == [None, None]


class TestAccessors:
    def test_str_accessors(self):
        assert Series(["Ab", None]).str_lower().tolist() == ["ab", None]
        assert Series(["a-b"]).str_replace("-", "+").tolist() == ["a+b"]
        assert Series(["x,y"]).str_split_part(",", 1).tolist() == ["y"]
        assert Series(["hay"]).str_contains("a").tolist() == [True]

    def test_dt_accessors(self):
        s = Series([datetime.date(2021, 3, 4)])
        assert s.dt_year().tolist() == [2021]
        assert s.dt_month().tolist() == [3]
        assert s.dt_day().tolist() == [4]

    def test_parse_dates(self):
        s = Series(["March 4, 2021", "2020-01-01"]).parse_dates()
        assert s.tolist() == [datetime.date(2021, 3, 4), datetime.date(2020, 1, 1)]


class TestReductions:
    def test_reductions_skip_nulls(self):
        s = Series([1.0, None, 3.0])
        assert s.sum() == 4.0
        assert s.mean() == 2.0
        assert s.count() == 2
        assert s.min() == 1.0
        assert s.max() == 3.0

    def test_empty_reductions_are_none(self):
        s = Series([None, None])
        assert s.sum() is None
        assert s.mean() is None
        assert s.median() is None

    def test_median(self):
        assert Series([3, 1, 2]).median() == 2
        assert Series([4, 1, 2, 3]).median() == 2.5

    def test_std(self):
        assert Series([2.0, 4.0]).std() == pytest.approx(1.4142135, rel=1e-5)
        assert Series([1.0]).std() is None

    def test_unique_and_nunique(self):
        s = Series([1, 1, 2, None, None])
        assert s.unique() == [1, 2, None]
        assert s.nunique() == 2
