"""End-to-end evaluation smoke tests at tiny scale.

The benches run the full experiments; these tests pin the *shape* of each
result on a reduced question set so regressions surface in `pytest tests/`.
"""

import pytest

from repro.baselines import (
    DSGuruRunner,
    FTSSystem,
    RAGSystem,
    SeekerSystem,
)
from repro.datasets import load_archaeology
from repro.eval import evaluate_accuracy, evaluate_convergence


@pytest.fixture(scope="module")
def arch():
    dataset = load_archaeology(scale=0.03)
    # One question per difficulty class keeps this fast but representative:
    # arch-01 (both), arch-02 (seeker/interpolation), arch-07 (none).
    keep = {"arch-01", "arch-02", "arch-07"}
    dataset.questions = [q for q in dataset.questions if q.qid in keep]
    return dataset


class TestAccuracyShape:
    def test_ordering(self, arch):
        results = evaluate_accuracy(
            arch,
            {
                "LlamaIndex": lambda q: RAGSystem(arch.lake).answer(q.text),
                "DS-Guru(O3)": lambda q: DSGuruRunner(arch.lake).answer(q.text),
                "Pneuma-Seeker": lambda q: SeekerSystem(arch.lake).answer(q.text),
            },
        )
        by_name = {r.system: r for r in results}
        assert by_name["Pneuma-Seeker"].correct == 2  # both + seeker classes
        assert by_name["DS-Guru(O3)"].correct == 1  # both class only
        assert by_name["LlamaIndex"].correct == 0


class TestConvergenceShape:
    def test_seeker_beats_static(self, arch):
        results = evaluate_convergence(
            arch,
            {
                "FTS": lambda: FTSSystem(arch.lake),
                "Pneuma-Seeker": lambda: SeekerSystem(arch.lake),
            },
            max_turns=10,
        )
        by_name = {r.system: r for r in results}
        assert by_name["Pneuma-Seeker"].converged > by_name["FTS"].converged
        assert by_name["FTS"].median_turns == 10.0
