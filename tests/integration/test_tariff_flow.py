"""Integration test: the paper's §3.6 tariff-impact walkthrough.

Procurement lake + tariff web schedule; the user clarifies that impact is
relative to the *previous* active tariff; the system integrates the web
records as columns and computes price * (1 + new_tariff - previous_tariff).
"""

import pytest

from repro.core import SeekerSession
from repro.datasets import (
    build_procurement_lake,
    build_tariff_web,
    tariff_impact_ground_truth,
)


@pytest.fixture(scope="module")
def lake():
    return build_procurement_lake(scale=0.1)


class TestTariffFlow:
    def test_two_round_convergence_to_impact(self, lake):
        session = SeekerSession(lake, web=build_tariff_web(), enable_web=True)
        # Round 1: broad question, as in §1.
        first = session.submit("What impact will tariffs have on our organization?")
        assert first.message  # system engages and reports something
        # Round 2: the user's key clarification from §3.6.
        session.submit(
            "Impact should be calculated relative to the previous active tariff, "
            "not just the current rate. What is the average price of orders from "
            "Germany under the new tariffs?"
        )
        expected_new_cost, _ = tariff_impact_ground_truth(lake, "Germany")
        answer = session.answer_value
        if answer is None:
            # The action limit may have interrupted before execution.
            answer = session.ask("Please continue with the analysis.")
        assert answer == pytest.approx(expected_new_cost, rel=1e-9)

    def test_web_columns_integrated_into_t(self, lake):
        session = SeekerSession(lake, web=build_tariff_web(), enable_web=True)
        session.ask(
            "Considering the new tariffs relative to the previous active tariff, "
            "what is the average price of purchase orders from Germany?"
        )
        target = session.state.materialized.resolve_table("purchase_orders_target")
        names = target.column_names()
        assert "new_tariff" in names
        assert "previous_tariff" in names

    def test_q_uses_derived_tariff_expression(self, lake):
        session = SeekerSession(lake, web=build_tariff_web(), enable_web=True)
        session.ask(
            "Considering the new tariffs relative to the previous active tariff, "
            "what is the average price of purchase orders from Germany?"
        )
        query = session.state.queries[-1]
        assert "new_tariff" in query
        assert "previous_tariff" in query

    def test_without_clarification_uses_new_rate_only(self, lake):
        session = SeekerSession(lake, web=build_tariff_web(), enable_web=True)
        answer = session.ask(
            "Under the new tariffs, what is the average price of purchase orders "
            "from Germany?"
        )
        avg = lake.query_value(
            "SELECT AVG(price) FROM purchase_orders WHERE country = 'Germany'"
        )
        record = next(r for r in build_tariff_web().search("tariff", 1)[0].payload["records"] if r["country"] == "Germany")
        assert answer == pytest.approx(avg * (1 + record["new_tariff"]), rel=1e-9)

    def test_web_disabled_cannot_integrate(self, lake):
        session = SeekerSession(lake, web=build_tariff_web(), enable_web=False)
        session.ask(
            "Considering the new tariffs relative to the previous active tariff, "
            "what is the average price of purchase orders from Germany?"
        )
        if session.state.materialized.has_table("purchase_orders_target"):
            names = session.state.materialized.resolve_table("purchase_orders_target").column_names()
            assert "new_tariff" not in names
