"""Unit tests for the IR System: dispatch, web search, knowledge DB."""

import pytest

from repro.documents import Document
from repro.ir import DocumentDatabase, IRSystem, WebPage, WebSearch
from repro.relational import Database, Table
from repro.retriever import PneumaRetriever


@pytest.fixture
def lake():
    db = Database("lake")
    db.register(
        Table.from_columns(
            "purchase_orders",
            {"country": ["Germany", "Japan"], "price": [100.0, 200.0]},
        )
    )
    return db


@pytest.fixture
def web():
    return WebSearch(
        [
            WebPage(
                url="https://x/tariffs",
                title="Tariff Schedule",
                text="new import tariffs by country",
                records=[{"country": "Germany", "new_tariff": 0.15}],
            )
        ]
    )


class TestWebSearch:
    def test_search_returns_documents(self, web):
        docs = web.search("import tariffs", k=1)
        assert docs[0].kind == "web"
        assert docs[0].payload["records"][0]["country"] == "Germany"

    def test_add_page(self, web):
        web.add_page(WebPage("https://x/other", "Rainfall", "daily rainfall data"))
        assert len(web) == 2
        docs = web.search("rainfall", k=1)
        assert docs[0].title == "Rainfall"


class TestDocumentDatabase:
    def test_capture_and_search(self):
        db = DocumentDatabase()
        db.add("tariff impact must include direct and indirect tariffs", topic="tariffs")
        docs = db.search("how do I analyze tariffs", k=1)
        assert docs[0].kind == "knowledge"
        assert "indirect" in docs[0].text

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            DocumentDatabase().add("   ")

    def test_persistence_round_trip(self, tmp_path):
        db = DocumentDatabase()
        db.add("knowledge one", topic="a", author="u1")
        db.add("knowledge two", topic="b")
        path = tmp_path / "knowledge.json"
        db.save(path)
        loaded = DocumentDatabase.load(path)
        assert len(loaded) == 2
        assert loaded.search("knowledge one", k=1)[0].payload["author"] == "u1"

    def test_save_is_atomic_under_crash(self, tmp_path, monkeypatch):
        """A crash mid-save leaves the previous file intact, never a torn one."""
        import repro.ir.docdb as docdb_module
        from repro.storage import CrashInjector, CrashSpec, SimulatedCrash
        from repro.storage.atomic import atomic_write_json

        db = DocumentDatabase()
        db.add("the durable entry", topic="a")
        path = tmp_path / "knowledge.json"
        db.save(path)

        injector = CrashInjector(CrashSpec.nth("atomic.before_rename"))
        monkeypatch.setattr(
            docdb_module,
            "atomic_write_json",
            lambda p, obj: atomic_write_json(p, obj, crash=injector),
        )
        db.add("the lost entry", topic="b")
        with pytest.raises(SimulatedCrash):
            db.save(path)
        survivors = DocumentDatabase.load(path)
        assert [e.text for e in survivors.entries()] == ["the durable entry"]

    def test_recorder_hook_observes_every_capture(self):
        db = DocumentDatabase()
        seen = []
        db.recorder = seen.append
        db.add("first", topic="t", author="u")
        db.add("second")
        assert [r["text"] for r in seen] == ["first", "second"]
        assert seen[0] == {"id": "k1", "text": "first", "topic": "t", "author": "u"}


class TestIRSystem:
    def test_merges_sources(self, lake, web):
        knowledge = DocumentDatabase()
        knowledge.add("always compare against the previous tariff", topic="tariffs")
        ir = IRSystem(retriever=PneumaRetriever(lake), web=web, knowledge=knowledge)
        result = ir.retrieve("tariff impact on purchases by country")
        assert result.tables()
        assert result.web()
        assert result.knowledge()
        assert set(result.per_source) == {"tables", "web", "knowledge"}

    def test_unregister_web(self, lake, web):
        ir = IRSystem(retriever=PneumaRetriever(lake), web=web)
        ir.unregister("web")
        result = ir.retrieve("tariffs")
        assert not result.web()
        assert "web" not in result.per_source

    def test_column_values(self, lake):
        ir = IRSystem(retriever=PneumaRetriever(lake))
        assert ir.column_values("purchase_orders", "country") == ["Germany", "Japan"]

    def test_capture_knowledge_roundtrip(self, lake):
        knowledge = DocumentDatabase()
        ir = IRSystem(retriever=PneumaRetriever(lake), knowledge=knowledge)
        ir.capture_knowledge("impact should be relative to previous tariffs", topic="tariffs")
        assert len(knowledge) == 1

    def test_custom_retriever_registration(self, lake):
        ir = IRSystem(retriever=PneumaRetriever(lake))
        ir.register("custom", lambda q, k: [Document("c:1", "web", "custom", q)])
        result = ir.retrieve("hello")
        assert any(d.doc_id == "c:1" for d in result.documents)


class TestDocument:
    def test_brief_truncates(self):
        doc = Document("d", "table", "t", "word " * 100)
        assert len(doc.brief(max_chars=50)) <= 62

    def test_json_round_trip(self):
        doc = Document("d", "web", "T", "text", payload={"a": 1}, score=0.5, source="s")
        assert Document.from_json(doc.to_json()) == doc
