"""Unit tests for the role policies behind the RuleLLM."""



from repro.llm.policies import (
    ConductorPolicy,
    DSGuruPolicy,
    MaterializerPolicy,
    RAGPolicy,
    UserSimPolicy,
)
from repro.llm.prompts import parse_prompt, parse_response, render_prompt


def sections_for(role, **kwargs):
    prompt = render_prompt(role, kwargs)
    _, sections = parse_prompt(prompt)
    return sections


TABLE_DOC = {
    "doc_id": "table:samples",
    "kind": "table",
    "title": "samples",
    "text": "table samples with potassium ppm region record date",
    "payload": {
        "name": "samples",
        "columns": [
            {"name": "region", "dtype": "TEXT"},
            {"name": "record_date", "dtype": "DATE"},
            {"name": "potassium_ppm", "dtype": "DOUBLE"},
        ],
        "num_rows": 100,
        "samples": [{"region": "Malta", "record_date": "2020-01-01", "potassium_ppm": "10.0"}],
    },
}


class TestConductorPolicy:
    def test_retrieves_first(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="average potassium", INTENT="average potassium",
            STATE={}, RETRIEVED=[], ACTIONS=[],
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "retrieve"
        assert "potassium" in action["query"]

    def test_grounds_before_planning(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="average potassium for Malta",
            INTENT="average potassium for Malta",
            STATE={}, RETRIEVED=[TABLE_DOC], ACTIONS=["retrieve"], GROUNDED={},
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "ground_values"
        assert action["table"] == "samples"

    def test_update_state_with_plan(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="average potassium for Malta",
            INTENT="average potassium for Malta",
            STATE={}, RETRIEVED=[TABLE_DOC],
            ACTIONS=["retrieve", "ground_values"],
            GROUNDED={"samples": {"region": ["Malta", "Gozo"]}},
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "update_state"
        assert action["plan"]["measure"] == "potassium_ppm"
        assert action["plan"]["filters"] == [
            {"column": "region", "op": "=", "value": "Malta"}
        ]
        assert "AVG(potassium_ppm)" in action["queries"][0]

    def test_exploratory_state_without_aggregate(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="what variables do we have?",
            INTENT="what variables do we have?",
            STATE={}, RETRIEVED=[TABLE_DOC], ACTIONS=["retrieve"],
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "update_state"
        assert action["plan"] is None
        assert action["queries"][0].startswith("SELECT *")

    def test_materialize_when_pending(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="x", INTENT="x",
            STATE={"T": [{"name": "samples_target", "columns": []}], "Q": [], "materialized": []},
            RETRIEVED=[TABLE_DOC], ACTIONS=["retrieve", "update_state"],
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "materialize"
        assert action["table"] == "samples_target"

    def test_execute_when_materialized(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="x", INTENT="x",
            STATE={
                "T": [{"name": "samples_target", "columns": []}],
                "Q": ["SELECT 1"],
                "materialized": ["samples_target"],
            },
            RETRIEVED=[TABLE_DOC], ACTIONS=["retrieve", "update_state", "materialize"],
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "execute_sql"

    def test_message_after_result(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="x", INTENT="x",
            STATE={
                "T": [{"name": "samples_target", "columns": [], "notes": "AVG"}],
                "Q": ["SELECT 1"],
                "materialized": ["samples_target"],
            },
            RETRIEVED=[TABLE_DOC],
            ACTIONS=["retrieve", "update_state", "materialize", "execute_sql"],
            LAST_RESULT={"value": 42},
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "message_user"
        assert "42" in action["message"]

    def test_force_message(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="x", INTENT="x",
            STATE={}, RETRIEVED=[], ACTIONS=[], FORCE_MESSAGE="true",
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "message_user"

    def test_no_tables_apologizes(self):
        policy = ConductorPolicy()
        sections = sections_for(
            "conductor", USER_MESSAGE="x", INTENT="x",
            STATE={}, RETRIEVED=[{"doc_id": "w", "kind": "web", "title": "t", "text": "", "payload": {}}],
            ACTIONS=["retrieve"],
        )
        action = parse_response(policy.respond(sections))["action"]
        assert action["kind"] == "message_user"
        assert "could not find" in action["message"].lower()


class TestMaterializerPolicy:
    def _spec(self):
        return {
            "name": "samples_target",
            "columns": [{"name": "potassium_ppm", "dtype": "DOUBLE"}],
            "base_tables": ["samples"],
            "integration": {},
        }

    def test_generates_load_select_result(self):
        policy = MaterializerPolicy()
        sections = sections_for(
            "materializer", TARGET=self._spec(), PLAN={}, DOCS=[TABLE_DOC], ATTEMPT="1",
        )
        program = parse_response(policy.respond(sections))["program"]
        ops = [p["op"] for p in program]
        assert ops[0] == "load"
        assert ops[-1] == "result"
        assert "select" in ops

    def test_join_integration(self):
        spec = self._spec()
        spec["base_tables"] = ["samples", "sites"]
        spec["integration"] = {"join": {"table": "sites", "left_on": "site_id", "right_on": "site_id"}}
        policy = MaterializerPolicy()
        sections = sections_for("materializer", TARGET=spec, PLAN={}, DOCS=[TABLE_DOC])
        program = parse_response(policy.respond(sections))["program"]
        assert any(p["op"] == "join" for p in program)

    def test_interpolation_ops(self):
        spec = self._spec()
        spec["integration"] = {"interpolate": {"column": "potassium_ppm", "order_by": "record_date"}}
        plan = {
            "table": "samples", "aggregate": "avg", "measure": "potassium_ppm",
            "filters": [{"column": "region", "value": "Malta", "op": "="}],
            "order_column": "record_date", "interpolate": True, "first_last": True,
        }
        policy = MaterializerPolicy()
        sections = sections_for("materializer", TARGET=spec, PLAN=plan, DOCS=[TABLE_DOC])
        program = parse_response(policy.respond(sections))["program"]
        ops = [p["op"] for p in program]
        assert "filter_equals" in ops
        assert "interpolate" in ops
        # Filter must precede interpolation (values interpolate within scope).
        assert ops.index("filter_equals") < ops.index("interpolate")

    def test_repair_drops_failing_select(self):
        policy = MaterializerPolicy()
        previous = [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "select", "frame": "main", "columns": ["ghost"]},
            {"op": "result", "frame": "main", "name": "samples_target"},
        ]
        sections = sections_for(
            "materializer", TARGET=self._spec(), PLAN={}, DOCS=[TABLE_DOC],
            ERROR="step 1 (select): columns not found: ['ghost']",
            PREVIOUS_PROGRAM=previous,
        )
        program = parse_response(policy.respond(sections))["program"]
        assert [p["op"] for p in program] == ["load", "result"]

    def test_repair_falls_back_to_skeleton(self):
        policy = MaterializerPolicy()
        previous = [
            {"op": "load", "table": "samples", "as": "main"},
            {"op": "result", "frame": "main", "name": "samples_target"},
        ]
        sections = sections_for(
            "materializer", TARGET=self._spec(), PLAN={}, DOCS=[TABLE_DOC],
            ERROR="something inexplicable happened",
            PREVIOUS_PROGRAM=previous,
        )
        program = parse_response(policy.respond(sections))["program"]
        assert [p["op"] for p in program] == ["load", "result"]


class TestRAGPolicy:
    def test_interprets_tables(self):
        policy = RAGPolicy()
        sections = sections_for(
            "rag", QUESTION="average potassium in malta", CONTEXT=[TABLE_DOC]
        )
        answer = parse_response(policy.respond(sections))["answer"]
        assert "samples" in answer
        assert "potassium_ppm" in answer

    def test_never_returns_value(self):
        policy = RAGPolicy()
        sections = sections_for(
            "rag", QUESTION="what is the average potassium", CONTEXT=[TABLE_DOC]
        )
        payload = parse_response(policy.respond(sections))
        assert set(payload) == {"answer"}

    def test_echoes_interpolation_need(self):
        policy = RAGPolicy()
        sections = sections_for(
            "rag",
            QUESTION="average potassium linearly interpolated between samples",
            CONTEXT=[TABLE_DOC],
        )
        answer = parse_response(policy.respond(sections))["answer"]
        assert "interpolated" in answer

    def test_empty_context(self):
        policy = RAGPolicy()
        sections = sections_for("rag", QUESTION="anything", CONTEXT=[])
        answer = parse_response(policy.respond(sections))["answer"]
        assert "nothing relevant" in answer


class TestDSGuruPolicy:
    def test_plan_and_program(self):
        policy = DSGuruPolicy()
        sections = sections_for(
            "ds_guru",
            QUESTION="What is the average potassium_ppm?",
            SCHEMAS=[TABLE_DOC["payload"]],
        )
        payload = parse_response(policy.respond(sections))
        assert payload["plan"]["aggregate"] == "avg"
        assert payload["program"][0]["op"] == "load"
        assert "AVG(potassium_ppm)" in payload["sql"]
        assert payload["subtasks"]

    def test_no_interpolation_capability(self):
        policy = DSGuruPolicy()
        sections = sections_for(
            "ds_guru",
            QUESTION="Average potassium_ppm linearly interpolated between samples",
            SCHEMAS=[TABLE_DOC["payload"]],
        )
        payload = parse_response(policy.respond(sections))
        assert payload["plan"]["interpolate"] is False
        assert not any(p["op"] == "interpolate" for p in payload["program"])

    def test_unplannable_question(self):
        policy = DSGuruPolicy()
        sections = sections_for(
            "ds_guru", QUESTION="tell me about the weather", SCHEMAS=[],
        )
        payload = parse_response(policy.respond(sections))
        assert payload["plan"] is None
        assert payload["program"] is None


class TestUserSimPolicy:
    CONCEPTS = [
        {"token": "field samples", "kind": "seed"},
        {"token": "potassium", "kind": "column"},
        {"token": "linearly interpolated", "kind": "operation"},
    ]

    def _respond(self, conversation, system_kind="seeker"):
        policy = UserSimPolicy()
        sections = sections_for(
            "user_sim",
            GOAL="What is the average potassium, linearly interpolated?",
            SYSTEM_KIND=system_kind,
            TOPIC="soil chemistry",
            CONCEPTS=self.CONCEPTS,
            CONVERSATION=conversation,
        )
        return parse_response(policy.respond(sections))

    def test_opening_is_broad(self):
        payload = self._respond([])
        assert not payload["converged"]
        assert "overview" in payload["message"].lower()
        # The opener must not leak unsurfaced concepts.
        assert "interpolated" not in payload["message"].lower()

    def test_articulates_surfaced_column(self):
        conversation = [
            {"speaker": "you", "text": "overview of field samples please"},
            {"speaker": "system", "text": "samples has variables potassium_ppm, region"},
        ]
        payload = self._respond(conversation)
        assert "potassium" in payload["message"].lower()

    def test_operation_gated_on_measure_surfacing(self):
        conversation = [
            {"speaker": "you", "text": "overview of field samples"},
            {"speaker": "system", "text": "I found tables about weather only"},
        ]
        payload = self._respond(conversation)
        assert "interpolated" not in payload["message"].lower()

    def test_converges_when_addressed(self):
        conversation = [
            {"speaker": "you", "text": "field samples potassium linearly interpolated please"},
            {
                "speaker": "system",
                "text": "field samples potassium_ppm linearly interpolated answer = 21.5",
            },
        ]
        payload = self._respond(conversation)
        assert payload["converged"] is True

    def test_static_never_converges_on_operations(self):
        conversation = [
            {"speaker": "you", "text": "field samples potassium linearly interpolated"},
            {
                "speaker": "system",
                "text": "table field_samples columns potassium_ppm linearly interpolated",
            },
        ]
        payload = self._respond(conversation, system_kind="static")
        assert payload["converged"] is False

    def test_corrective_feedback_names_missing_concepts(self):
        goal = "What is the average potassium, linearly interpolated?"
        conversation = [
            {"speaker": "you", "text": "field samples potassium linearly interpolated"},
            {"speaker": "system", "text": "field samples potassium linearly interpolated no result yet"},
            {"speaker": "you", "text": goal},
            {"speaker": "system", "text": "the answer = 5 for field samples potassium only"},
        ]
        payload = self._respond(conversation)
        assert not payload["converged"]
        assert "interpolated" in payload["message"]
