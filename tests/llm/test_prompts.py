"""Unit tests for the structured prompt protocol."""

import pytest

from repro.llm import (
    PromptFormatError,
    parse_prompt,
    parse_response,
    render_prompt,
    render_response,
    section_json,
)


class TestRenderParse:
    def test_round_trip(self):
        prompt = render_prompt("conductor", {"USER_MESSAGE": "hi", "STATE": {"Q": []}})
        role, sections = parse_prompt(prompt)
        assert role == "conductor"
        assert sections["USER_MESSAGE"] == "hi"
        assert section_json(sections, "STATE") == {"Q": []}

    def test_multiline_section(self):
        prompt = render_prompt("rag", {"CONTEXT": "line1\nline2"})
        _, sections = parse_prompt(prompt)
        assert sections["CONTEXT"] == "line1\nline2"

    def test_json_sections_are_deterministic(self):
        a = render_prompt("x", {"DATA": {"b": 1, "a": 2}})
        b = render_prompt("x", {"DATA": {"a": 2, "b": 1}})
        assert a == b

    def test_role_reserved(self):
        with pytest.raises(PromptFormatError):
            render_prompt("x", {"ROLE": "y"})

    def test_bad_role(self):
        with pytest.raises(PromptFormatError):
            render_prompt("bad\nrole", {})

    def test_missing_role_on_parse(self):
        with pytest.raises(PromptFormatError):
            parse_prompt("no sections here")

    def test_section_json_default(self):
        assert section_json({}, "MISSING", default=[]) == []

    def test_section_json_invalid(self):
        with pytest.raises(PromptFormatError):
            section_json({"X": "{not json"}, "X")


class TestResponses:
    def test_round_trip(self):
        text = render_response({"action": {"kind": "retrieve"}})
        assert parse_response(text) == {"action": {"kind": "retrieve"}}

    def test_malformed_raises(self):
        with pytest.raises(PromptFormatError):
            parse_response("not json at all")
