"""Unit tests for the RuleLLM: dispatch, metering, context limits."""

import pytest

from repro.llm import ContextLengthExceeded, ModelLimits, RuleLLM, render_prompt
from repro.llm.clock import VirtualClock


class EchoPolicy:
    role = "echo"

    def respond(self, sections):
        return sections.get("MESSAGE", "")


class TestRuleLLM:
    def test_dispatch(self):
        llm = RuleLLM()
        llm.register(EchoPolicy())
        out = llm.complete(render_prompt("echo", {"MESSAGE": "hello"}))
        assert out == "hello"

    def test_unknown_role_raises(self):
        llm = RuleLLM()
        with pytest.raises(KeyError):
            llm.complete(render_prompt("ghost", {}))

    def test_usage_metered(self):
        llm = RuleLLM()
        llm.register(EchoPolicy())
        llm.complete(render_prompt("echo", {"MESSAGE": "hello world"}), "tester")
        usage = llm.ledger.total()
        assert usage.prompt_tokens > 0
        assert usage.completion_tokens > 0
        assert llm.ledger.num_calls("tester") == 1

    def test_context_limit_enforced(self):
        llm = RuleLLM(limits=ModelLimits(context_tokens=50))
        llm.register(EchoPolicy())
        big = render_prompt("echo", {"MESSAGE": "word " * 200})
        with pytest.raises(ContextLengthExceeded) as err:
            llm.complete(big)
        assert err.value.tokens > 50
        # Nothing should be recorded for a failed call.
        assert llm.ledger.num_calls() == 0

    def test_clock_ticks(self):
        clock = VirtualClock()
        llm = RuleLLM(clock=clock, seconds_per_call=7.0)
        llm.register(EchoPolicy())
        llm.complete(render_prompt("echo", {"MESSAGE": "x"}))
        llm.complete(render_prompt("echo", {"MESSAGE": "y"}))
        assert clock.now == pytest.approx(14.0)

    def test_model_name(self):
        assert RuleLLM(model_name="O3").model_name == "O3"


class TestVirtualClock:
    def test_tick_accumulates(self):
        clock = VirtualClock()
        clock.tick(1.5)
        clock.tick(2.5)
        assert clock.now == 4.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().tick(-1)

    def test_reset(self):
        clock = VirtualClock()
        clock.tick(3)
        clock.reset()
        assert clock.now == 0.0
