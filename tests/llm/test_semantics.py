"""Unit tests for NL-understanding utilities and query synthesis."""

import pytest

from repro.llm.semantics import (
    FilterSpec,
    QueryPlan,
    SchemaView,
    best_measure_column,
    candidate_join_keys,
    detect_aggregate,
    detect_round_digits,
    extract_years,
    ground_filters,
    is_id_like,
    plan_to_sql,
    wants_first_last,
    wants_interpolation,
)


def make_schema(name, columns, samples=()):
    return SchemaView.from_payload(
        {"name": name, "columns": [{"name": c, "dtype": t} for c, t in columns], "samples": list(samples)}
    )


class TestDetectors:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("What is the average potassium?", "avg"),
            ("total spend on equipment", "sum"),
            ("How many artifacts are there?", "count"),
            ("the highest calibrated year", "max"),
            ("lowest minimum temperature", "min"),
            ("median turbidity of samples", "median"),
            ("standard deviation of cost", "stddev"),
            ("correlation between pm25 and humidity", "corr"),
            ("show me the tables", None),
        ],
    )
    def test_detect_aggregate(self, text, expected):
        assert detect_aggregate(text) == expected

    def test_first_cue_wins(self):
        # "average ... highest" — avg appears first.
        assert detect_aggregate("average of the highest readings") == "avg"

    def test_round_digits(self):
        assert detect_round_digits("Round your answer to 4 decimal places.") == 4
        assert detect_round_digits("rounded to 2 decimal places") == 2
        assert detect_round_digits("no rounding at all") is None

    def test_interpolation_and_first_last(self):
        text = "Assume potassium is linearly interpolated between samples, first and last"
        assert wants_interpolation(text)
        assert wants_first_last(text)
        assert not wants_interpolation("plain average")

    def test_extract_years(self):
        assert extract_years("between 2015 and 2020") == [2015, 2020]
        assert extract_years("sample 12345 code 1776") == []

    def test_is_id_like(self):
        assert is_id_like("site_id")
        assert is_id_like("ID")
        assert not is_id_like("acidity")


class TestMeasureSelection:
    def test_matching_column_wins(self):
        schema = make_schema(
            "samples",
            [("potassium_ppm", "DOUBLE"), ("sodium_ppm", "DOUBLE"), ("sample_id", "INTEGER")],
        )
        col = best_measure_column("average potassium in ppm", schema)
        assert col.name == "potassium_ppm"

    def test_id_columns_excluded(self):
        schema = make_schema("t", [("station_id", "INTEGER")])
        assert best_measure_column("average station reading", schema) is None

    def test_no_match_returns_none(self):
        schema = make_schema("t", [("mass_grams", "DOUBLE")])
        assert best_measure_column("what about the weather", schema) is None


class TestGroundFilters:
    def test_full_value_mention_matches(self):
        schema = make_schema(
            "artifacts",
            [("material", "TEXT"), ("mass", "DOUBLE")],
            samples=[{"material": "Bronze", "mass": 1.0}],
        )
        filters = ground_filters("how many are made of bronze", schema)
        assert [(f.column, f.value) for f in filters] == [("material", "Bronze")]

    def test_partial_mention_rejected(self):
        schema = make_schema(
            "artifacts",
            [("museum", "TEXT")],
            samples=[{"museum": "Regional Collection"}],
        )
        # Only 'collection' appears in the question: no filter.
        assert ground_filters("artifacts in the collection", schema) == []

    def test_known_values_extend_samples(self):
        schema = make_schema(
            "artifacts",
            [("period", "TEXT")],
            samples=[{"period": "Roman"}],
        )
        no_grounding = ground_filters("artifacts from the Hellenistic period", schema)
        assert no_grounding == []
        grounded = ground_filters(
            "artifacts from the Hellenistic period",
            schema,
            known_values={"period": ["Roman", "Hellenistic"]},
        )
        assert [(f.column, f.value) for f in grounded] == [("period", "Hellenistic")]

    def test_year_filter_on_date_column(self):
        schema = make_schema("log", [("log_date", "DATE"), ("cost", "DOUBLE")])
        filters = ground_filters("costs in 2019", schema)
        assert [(f.column, f.value, f.op) for f in filters] == [("log_date", 2019, "year")]

    def test_excluded_columns_skipped(self):
        schema = make_schema(
            "t", [("label", "TEXT")], samples=[{"label": "gold"}]
        )
        assert ground_filters("gold stuff", schema, exclude_columns=["label"]) == []


class TestJoinKeys:
    def test_exact_id_match_preferred(self):
        left = make_schema(
            "samples",
            [("site_id", "INTEGER"), ("region", "TEXT")],
            samples=[{"site_id": 1, "region": "North"}],
        )
        right = make_schema(
            "sites",
            [("site_id", "INTEGER"), ("region", "TEXT")],
            samples=[{"site_id": 1, "region": "North"}],
        )
        keys = candidate_join_keys(left, right)
        assert keys[0] == ("site_id", "site_id")

    def test_no_candidates(self):
        left = make_schema("a", [("x", "INTEGER")])
        right = make_schema("b", [("y", "INTEGER")])
        assert candidate_join_keys(left, right) == []


class TestPlanToSQL:
    def test_simple_avg(self):
        plan = QueryPlan(table="t", aggregate="avg", measure="x")
        assert plan_to_sql(plan) == "SELECT AVG(x) AS answer FROM t"

    def test_count_star(self):
        plan = QueryPlan(table="t", aggregate="count", measure=None)
        assert plan_to_sql(plan) == "SELECT COUNT(*) AS answer FROM t"

    def test_filters_and_round(self):
        plan = QueryPlan(
            table="t",
            aggregate="avg",
            measure="x",
            filters=[FilterSpec("region", "Malta")],
            round_digits=4,
        )
        sql = plan_to_sql(plan, "t_target")
        assert "ROUND(AVG(x), 4)" in sql
        assert "region = 'Malta'" in sql
        assert "FROM t_target" in sql

    def test_first_last_subqueries(self):
        plan = QueryPlan(
            table="t", aggregate="avg", measure="x",
            order_column="d", first_last=True,
        )
        sql = plan_to_sql(plan)
        assert "SELECT MIN(d) FROM t" in sql
        assert "SELECT MAX(d) FROM t" in sql

    def test_corr(self):
        plan = QueryPlan(table="t", aggregate="corr", measure="a", second_measure="b")
        assert "CORR(a, b)" in plan_to_sql(plan)

    def test_measure_expr_overrides(self):
        plan = QueryPlan(
            table="t", aggregate="avg", measure="price",
            measure_expr="price * (1 + new_tariff - previous_tariff)",
        )
        assert "AVG(price * (1 + new_tariff - previous_tariff))" in plan_to_sql(plan)

    def test_sql_escaping(self):
        plan = QueryPlan(
            table="t", aggregate="count", measure=None,
            filters=[FilterSpec("name", "O'Brien")],
        )
        assert "O''Brien" in plan_to_sql(plan)

    def test_year_filter_sql(self):
        spec = FilterSpec("log_date", 2019, "year")
        assert spec.to_sql() == "YEAR(log_date) = 2019"

    def test_contains_filter_sql(self):
        spec = FilterSpec("region", "Malta", "contains")
        assert spec.to_sql() == "LOWER(region) LIKE '%malta%'"
