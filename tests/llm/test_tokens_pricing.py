"""Unit tests for token metering and model pricing."""

import pytest

from repro.llm import MODEL_PRICES, TABLE2_MODEL_ORDER, UsageLedger, count_tokens, price_for
from repro.llm.tokens import Usage


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_single_word(self):
        assert count_tokens("hello") >= 1

    def test_scales_with_length(self):
        short = count_tokens("one two three")
        long = count_tokens(" ".join(["word"] * 300))
        assert long > short * 10

    def test_char_heavy_text(self):
        # Long unbroken strings count by characters, not words.
        assert count_tokens("x" * 400) >= 100

    def test_deterministic(self):
        text = "SELECT AVG(potassium_ppm) FROM samples"
        assert count_tokens(text) == count_tokens(text)


class TestUsageLedger:
    def test_totals(self):
        ledger = UsageLedger()
        ledger.record("conductor", 100, 10)
        ledger.record("materializer", 50, 5)
        total = ledger.total()
        assert total.prompt_tokens == 150
        assert total.completion_tokens == 15
        assert total.total_tokens == 165

    def test_by_component(self):
        ledger = UsageLedger()
        ledger.record("a", 10, 1)
        ledger.record("a", 10, 1)
        ledger.record("b", 5, 2)
        by = ledger.by_component()
        assert by["a"].prompt_tokens == 20
        assert by["b"].completion_tokens == 2

    def test_num_calls(self):
        ledger = UsageLedger()
        ledger.record("a", 1, 1)
        ledger.record("b", 1, 1)
        assert ledger.num_calls() == 2
        assert ledger.num_calls("a") == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UsageLedger().record("a", -1, 0)

    def test_reset(self):
        ledger = UsageLedger()
        ledger.record("a", 1, 1)
        ledger.reset()
        assert ledger.num_calls() == 0


class TestPricing:
    def test_paper_o4_mini_rates(self):
        # §4.1: "$1.1 and $4.4 for every 1 million input and output tokens".
        price = price_for("O4-mini")
        assert price.input_per_million == 1.10
        assert price.output_per_million == 4.40

    def test_all_table2_models_present(self):
        assert TABLE2_MODEL_ORDER == [
            "Haiku 4.5", "O4-mini", "O3", "gpt-5.1", "Sonnet 4.5", "Opus 4.5",
        ]

    def test_cost_computation(self):
        usage = Usage(prompt_tokens=1_000_000, completion_tokens=500_000)
        cost = MODEL_PRICES["O4-mini"].cost(usage)
        assert cost.input_cost == pytest.approx(1.10)
        assert cost.output_cost == pytest.approx(2.20)
        assert cost.total == pytest.approx(3.30)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            price_for("gpt-99")
