"""Metrics registry: typed families, labels, percentiles, thread safety."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    percentile,
    percentile_sorted,
    registry_to_json,
    render_prometheus,
)


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile_sorted([], 99) == 0.0

    def test_single_sample_is_every_percentile(self):
        for p in (0, 37.5, 50, 99, 100):
            assert percentile([4.2], p) == 4.2

    def test_p0_and_p100_are_min_and_max(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 5.0

    def test_unsorted_input_sorted_internally(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_linear_interpolation_between_ranks(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([10.0, 20.0], 75) == pytest.approx(17.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_percentile_sorted_trusts_its_input(self):
        # The contract: callers sort once, then cut many times cheaply.
        ordered = sorted([0.9, 0.1, 0.5])
        assert percentile_sorted(ordered, 50) == 0.5


class TestFamilies:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("events", "help")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value == 4

    def test_histogram_buckets_and_percentiles(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0), max_samples=100)
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        default = h._default()
        assert default.count == 4
        assert default.sum == pytest.approx(6.05)
        snap = default.snapshot()
        assert snap["buckets"] == [(0.1, 1), (1.0, 3)]  # cumulative
        assert default.percentile(100) == 5.0

    def test_histogram_reservoir_trims_oldest_half(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,), max_samples=10)
        for i in range(11):
            h.observe(float(i))
        samples = h._default().samples()
        # One splice dropped the oldest max_samples//2 observations, but
        # count/sum keep the full history.
        assert samples == [float(i) for i in range(5, 11)]
        assert h._default().count == 11

    def test_registration_idempotent_but_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("x", "help")
        assert registry.counter("x") is first
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("x", labels=("kind",))

    def test_labeled_children_are_distinct_and_cached(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", labels=("route",))
        a = family.labels("a")
        a.inc(2)
        family.labels("b").inc()
        assert family.labels("a") is a
        assert {k: child.value for (k,), child in family.items()} == {"a": 2, "b": 1}

    def test_labeled_family_rejects_bare_recording(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", labels=("route",))
        with pytest.raises(ValueError):
            family.inc()
        with pytest.raises(ValueError):
            family.labels("a", "extra")

    def test_default_latency_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestConcurrency:
    def test_concurrent_recording_is_exact(self):
        """N threads x M observations: totals must be exact, not approximate."""
        registry = MetricsRegistry(stripes=4)
        counter = registry.counter("ops", labels=("worker",))
        hist = registry.histogram("lat", buckets=(0.5,), max_samples=0)
        threads_n, each = 8, 500
        barrier = threading.Barrier(threads_n)

        def work(worker):
            child = counter.labels(f"w{worker % 2}")  # contend on two children
            barrier.wait()
            for _ in range(each):
                child.inc()
                hist.observe(0.25)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = sum(child.value for _, child in counter.items())
        assert total == threads_n * each
        assert hist._default().count == threads_n * each

    def test_concurrent_registration_yields_one_family(self):
        registry = MetricsRegistry()
        found = []
        barrier = threading.Barrier(8)

        def register():
            barrier.wait()
            found.append(registry.counter("shared"))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(f is found[0] for f in found)
        found[0].inc()
        assert registry.get("shared").value == 1


class TestExposition:
    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("jobs", "jobs processed").inc(2)
        registry.gauge("depth").set(3)
        registry.counter("moves", labels=("from", "to")).labels("a", "b").inc()
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry)
        assert "# HELP jobs jobs processed" in text
        assert "# TYPE jobs counter" in text
        assert "jobs_total 2" in text
        assert "depth 3" in text  # gauges get no _total suffix
        assert 'moves_total{from="a",to="b"} 1' in text
        assert 'lat_bucket{le="0.1"} 0' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("msg",)).labels('say "hi"\n').inc()
        text = render_prometheus(registry)
        assert 'msg="say \\"hi\\"\\n"' in text

    def test_json_mirror_is_collect(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert registry_to_json(registry) == registry.collect()
        assert registry.collect()[0]["series"] == [{"labels": [], "value": 1}]
