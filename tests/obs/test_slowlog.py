"""Slow-turn log: threshold retention, anomaly priority, bounded eviction."""

import json

import pytest

from repro.obs import SlowTurnLog, Tracer


def finished_turn(duration, **attrs):
    """A finished root span of the given duration, on a virtual clock."""
    now = [0.0]
    tracer = Tracer(clock=lambda: now[0])
    root = tracer.start_trace("turn", **attrs)
    now[0] += duration
    root.__exit__(None, None, None)
    return root


class TestRetention:
    def test_fast_ok_turns_are_not_retained(self):
        log = SlowTurnLog(threshold_seconds=0.5)
        assert log.offer(finished_turn(0.1), "ok") is False
        assert log.stats()["offered"] == 1
        assert log.stats()["held"] == 0

    def test_slow_ok_turns_are_retained(self):
        log = SlowTurnLog(threshold_seconds=0.5)
        assert log.offer(finished_turn(0.5), "ok") is True
        assert log.slowest().duration == 0.5

    def test_anomalous_outcomes_retained_regardless_of_latency(self):
        log = SlowTurnLog(threshold_seconds=100.0)
        for outcome in ("failed", "degraded", "shed"):
            assert log.offer(finished_turn(0.001), outcome) is True
        assert log.stats()["held_by_outcome"] == {"failed": 1, "degraded": 1, "shed": 1}

    def test_zero_threshold_keeps_everything(self):
        log = SlowTurnLog(threshold_seconds=0.0)
        assert log.offer(finished_turn(0.0), "ok") is True


class TestEviction:
    def test_fastest_ok_evicted_first(self):
        log = SlowTurnLog(threshold_seconds=0.0, capacity=2)
        log.offer(finished_turn(0.1, n=0), "ok")
        log.offer(finished_turn(0.3, n=1), "ok")
        assert log.offer(finished_turn(0.2, n=2), "ok") is True
        held = {e["root"].attrs["n"] for e in log.exemplars()}
        assert held == {1, 2}  # the 0.1s exemplar lost its slot

    def test_anomalous_outranks_slower_ok(self):
        log = SlowTurnLog(threshold_seconds=0.0, capacity=2)
        log.offer(finished_turn(0.9, n=0), "ok")
        log.offer(finished_turn(0.001, n=1), "failed")
        # A full log of {slow ok, fast failed}: a new ok turn slower than
        # the ok exemplar evicts it; the failed exemplar survives.
        assert log.offer(finished_turn(1.5, n=2), "ok") is True
        held = {(e["outcome"], e["root"].attrs["n"]) for e in log.exemplars()}
        assert held == {("failed", 1), ("ok", 2)}

    def test_less_interesting_than_everything_held_is_rejected(self):
        log = SlowTurnLog(threshold_seconds=0.0, capacity=1)
        log.offer(finished_turn(0.9), "ok")
        assert log.offer(finished_turn(0.2), "ok") is False
        assert log.slowest().duration == 0.9

    def test_exemplars_sorted_most_interesting_first(self):
        log = SlowTurnLog(threshold_seconds=0.0, capacity=8)
        log.offer(finished_turn(0.5), "ok")
        log.offer(finished_turn(0.1), "degraded")
        log.offer(finished_turn(0.2), "ok")
        order = [(e["outcome"], e["duration"]) for e in log.exemplars()]
        assert order == [("degraded", 0.1), ("ok", 0.5), ("ok", 0.2)]

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            SlowTurnLog(capacity=0)


class TestDump:
    def test_dump_jsonl_records_outcome_and_tree(self, tmp_path):
        log = SlowTurnLog(threshold_seconds=0.0)
        log.offer(finished_turn(0.25, session="s1"), "degraded")
        path = tmp_path / "slow.jsonl"
        assert log.dump_jsonl(path) == 1
        record = json.loads(path.read_text().strip())
        assert record["outcome"] == "degraded"
        assert record["duration"] == 0.25
        assert record["trace"]["name"] == "turn"
        assert record["trace"]["attrs"] == {"session": "s1"}

    def test_empty_log_dumps_nothing(self, tmp_path):
        log = SlowTurnLog()
        path = tmp_path / "slow.jsonl"
        assert log.dump_jsonl(path) == 0
        assert path.read_text() == ""
        assert log.slowest() is None
