"""Tracer: deterministic ids, nesting, transparency, ring bounds, export."""

import json

import pytest

from repro.obs import NOOP_SPAN, Tracer, render_span_tree
from repro.obs import trace as obs
from repro.obs.trace import derive_id


class VirtualClock:
    """A deterministic clock: every reading advances by ``step`` seconds."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def traced_turn(tracer):
    with tracer.start_trace("turn", session="s1") as root:
        with obs.span("retrieval.search", k=5):
            with obs.span("retrieval.bm25"):
                pass
            obs.event("fusion_done", pool=50)
        with obs.span("llm.complete") as sp:
            sp.set_attr("attempts", 1)
    return root


class TestDeterminism:
    def test_two_runs_identical_trees(self):
        """Same seed + virtual clock: the exported tree is byte-identical."""
        trees = []
        for _ in range(2):
            tracer = Tracer(seed=7, clock=VirtualClock())
            trees.append(json.dumps(traced_turn(tracer).to_json(), sort_keys=True))
        assert trees[0] == trees[1]

    def test_seed_changes_every_id(self):
        a = traced_turn(Tracer(seed=0, clock=VirtualClock())).to_json()
        b = traced_turn(Tracer(seed=1, clock=VirtualClock())).to_json()
        assert a["trace_id"] != b["trace_id"]
        assert a["span_id"] != b["span_id"]

    def test_ids_are_the_derived_stream(self):
        tracer = Tracer(seed=3, clock=VirtualClock())
        root = traced_turn(tracer)
        assert root.trace_id == derive_id("trace:3", 1, size=12)
        assert root.span_id == derive_id(root.trace_id, 1)
        # Depth-first creation order: root, search, bm25, llm.
        llm = root.find("llm.complete")[0]
        assert llm.span_id == derive_id(root.trace_id, 4)

    def test_no_wall_clock_leaks_with_virtual_clock(self):
        clock = VirtualClock(step=0.5)
        root = traced_turn(Tracer(clock=clock))
        for span in root.iter_spans():
            assert span.start <= span.end <= clock.now


class TestStructure:
    def test_nesting_and_parent_ids(self):
        root = traced_turn(Tracer(clock=VirtualClock()))
        assert root.span_names() == [
            "turn", "retrieval.search", "retrieval.bm25", "llm.complete",
        ]
        search = root.find("retrieval.search")[0]
        assert search.parent_id == root.span_id
        assert root.parent_id is None
        assert search.children[0].parent_id == search.span_id

    def test_events_and_attrs_recorded(self):
        root = traced_turn(Tracer(clock=VirtualClock()))
        search = root.find("retrieval.search")[0]
        assert search.attrs == {"k": 5}
        assert search.events[0]["name"] == "fusion_done"
        assert search.events[0]["attrs"] == {"pool": 50}
        assert root.find("llm.complete")[0].attrs == {"attempts": 1}

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer(clock=VirtualClock())
        with pytest.raises(RuntimeError):
            with tracer.start_trace("turn"):
                with obs.span("sql.execute"):
                    raise RuntimeError("boom")
        root = tracer.traces("turn")[0]
        assert root.status == "error" and root.attrs["error"] == "RuntimeError"
        sql = root.find("sql.execute")[0]
        assert sql.status == "error" and sql.end is not None

    def test_root_exit_clears_thread_context(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.start_trace("turn"):
            assert obs.active_tracer() is tracer
        assert obs.active_span() is None
        assert obs.active_tracer() is None


class TestTransparency:
    def test_helpers_are_noops_without_a_trace(self):
        assert obs.span("anything", k=1) is NOOP_SPAN
        obs.event("ignored")  # must not raise
        obs.set_attr("ignored", 1)
        with obs.span("still-nothing") as sp:
            sp.set_attr("a", 1)
            sp.event("b")
        assert obs.active_span() is None

    def test_noop_span_is_shared(self):
        assert obs.span("a") is obs.span("b")


class TestRingAndExport:
    def test_ring_bounded_by_max_traces(self):
        tracer = Tracer(clock=VirtualClock(), max_traces=3)
        for i in range(5):
            with tracer.start_trace("turn", n=i):
                pass
        kept = tracer.traces("turn")
        assert [r.attrs["n"] for r in kept] == [2, 3, 4]
        stats = tracer.stats()
        assert stats["traces_started"] == stats["traces_finished"] == 5
        assert stats["traces_retained"] == 3
        assert stats["spans_recorded"] == 5

    def test_invalid_max_traces_raises(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)

    def test_slowest_picks_longest_root(self):
        clock = VirtualClock(step=0.0)
        tracer = Tracer(clock=lambda: clock.now)
        for width in (0.1, 0.9, 0.4):
            root = tracer.start_trace("turn", width=width)
            clock.now += width
            root.__exit__(None, None, None)
        assert tracer.slowest("turn").attrs["width"] == 0.9

    def test_export_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(seed=5, clock=VirtualClock())
        root = traced_turn(tracer)
        path = tmp_path / "traces.jsonl"
        assert tracer.export_jsonl(path, name="turn") == 1
        loaded = json.loads(path.read_text().strip())
        assert loaded == root.to_json()
        rendered = render_span_tree(loaded)
        assert rendered.splitlines()[0].startswith("turn ")
        assert "├─ retrieval.search" in rendered
        assert "└─ llm.complete" in rendered
        assert "!fusion_done" in rendered
