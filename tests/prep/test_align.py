"""Alignment compiler: spec -> SQL preparation plan, and its refusals."""

import pytest

from repro.core import TargetColumn, TargetTable
from repro.prep import AlignmentCompiler, AlignmentError, PreparationPipeline
from repro.relational import Database, Table


@pytest.fixture
def lake():
    db = Database("shop")
    db.register(
        Table.from_columns(
            "customers",
            {
                "cust_id": list(range(100, 160)),
                "region": [f"region-{i % 4}" for i in range(60)],
            },
        )
    )
    db.register(
        Table.from_columns(
            "orders",
            {
                "order_id": list(range(5000, 5090)),
                "cust_ref": [100 + (i % 60) for i in range(90)],
                "amount": [float(10 * i) for i in range(90)],
            },
        )
    )
    db.register(
        Table.from_columns(
            "shipments",
            {
                "shipment_id": list(range(900, 960)),
                "order_ref": [5000 + (i % 90) for i in range(60)],
                "weight": [float(i) for i in range(60)],
            },
        )
    )
    return db


@pytest.fixture
def compiler(lake):
    return AlignmentCompiler(lake, PreparationPipeline(lake).join_candidates())


def spec(name, columns, base=(), integration=None):
    return TargetTable(
        name=name,
        columns=[TargetColumn(name=c, source=s) for c, s in columns],
        base_tables=list(base),
        integration=dict(integration or {}),
    )


class TestCompile:
    def test_single_table_projection(self, compiler, lake):
        plan = compiler.compile(
            spec("order_view", [("order_id", ""), ("amount", "")], base=["orders"])
        )
        assert plan.tables == ["orders"]
        assert plan.joins == []
        table = compiler.execute(plan)
        assert table.name == "order_view"
        assert table.num_rows == 90
        assert table.column_names() == ["order_id", "amount"]

    def test_discovered_join_path(self, compiler):
        plan = compiler.compile(
            spec(
                "enriched",
                [("amount", "orders.amount"), ("region", "customers.region")],
            )
        )
        assert set(plan.tables) == {"orders", "customers"}
        assert len(plan.joins) == 1
        edge = plan.joins[0]
        assert {edge.left_column, edge.right_column} == {"cust_ref", "cust_id"}
        table = compiler.execute(plan)
        assert table.column_names() == ["amount", "region"]
        assert table.num_rows == 90  # every order matches exactly one customer

    def test_multi_hop_join_path(self, compiler):
        plan = compiler.compile(
            spec(
                "chain",
                [("weight", "shipments.weight"), ("region", "customers.region")],
            )
        )
        # shipments reach customers only through orders.
        assert set(plan.tables) == {"shipments", "orders", "customers"}
        assert len(plan.joins) == 2
        assert compiler.execute(plan).num_rows == 60

    def test_qualified_source_resolution(self, compiler):
        plan = compiler.compile(spec("t", [("x", "orders.amount")]))
        assert plan.column_map == [("x", "orders", "amount")]

    def test_bare_source_prefers_base_tables(self, compiler):
        # 'order_id' exists in orders only; base_tables guides the search.
        plan = compiler.compile(spec("t", [("order_id", "")], base=["orders"]))
        assert plan.column_map[0][1] == "orders"

    def test_join_hint_forces_edge(self, lake):
        # No discovered candidates at all: the hint alone must connect.
        compiler = AlignmentCompiler(lake, [])
        plan = compiler.compile(
            spec(
                "hinted",
                [("amount", "orders.amount"), ("region", "customers.region")],
                base=["orders"],
                integration={
                    "join": {"table": "customers", "left_on": "cust_ref", "right_on": "cust_id"}
                },
            )
        )
        assert plan.joins[0].condition() == "orders.cust_ref = customers.cust_id"

    def test_key_like_edge_beats_category_tie(self):
        # Both 'zone' (4 distinct) and the id FK have containment 1.0;
        # joining on the category would fan 90 orders out to thousands
        # of rows.  The higher-cardinality key column must win the tie.
        db = Database("tie")
        db.register(
            Table.from_columns(
                "customers",
                {
                    "cust_id": list(range(60)),
                    "zone": [f"z{i % 4}" for i in range(60)],
                },
            )
        )
        db.register(
            Table.from_columns(
                "orders",
                {
                    "cust_ref": [i % 60 for i in range(90)],
                    "zone": [f"z{i % 4}" for i in range(90)],
                    "amount": [float(i) for i in range(90)],
                },
            )
        )
        compiler = AlignmentCompiler(db, PreparationPipeline(db).join_candidates())
        plan = compiler.compile(
            spec("t", [("amount", "orders.amount"), ("cust_id", "customers.cust_id")])
        )
        assert {plan.joins[0].left_column, plan.joins[0].right_column} == {
            "cust_ref",
            "cust_id",
        }
        assert compiler.execute(plan).num_rows == 90

    def test_explain_mentions_sql_and_mapping(self, compiler):
        plan = compiler.compile(spec("t", [("amount", "orders.amount")]))
        text = plan.explain()
        assert "orders.amount" in text
        assert "sql:" in text


class TestRefusals:
    def test_empty_spec(self, compiler):
        with pytest.raises(AlignmentError, match="no columns"):
            compiler.compile(spec("t", []))

    def test_web_provenance(self, compiler):
        with pytest.raises(AlignmentError, match="provenance"):
            compiler.compile(spec("t", [("tariff", "web:tariff-schedule")]))

    def test_unsupported_integration_hint(self, compiler):
        with pytest.raises(AlignmentError, match="materialization loop"):
            compiler.compile(
                spec("t", [("amount", "orders.amount")], integration={"interpolate": {}})
            )

    def test_unknown_column(self, compiler):
        with pytest.raises(AlignmentError, match="no lake column"):
            compiler.compile(spec("t", [("nonexistent", "")]))

    def test_unknown_source_table(self, compiler):
        with pytest.raises(AlignmentError, match="not in the lake"):
            compiler.compile(spec("t", [("x", "ghost.amount")]))

    def test_ambiguous_bare_column(self, lake, compiler):
        # 'region' only in customers, but add a second table that has it too.
        lake.register(
            Table.from_columns("zones", {"region": [f"region-{i}" for i in range(10)]})
        )
        try:
            with pytest.raises(AlignmentError, match="ambiguous"):
                compiler.compile(spec("t", [("region", "")]))
        finally:
            lake.drop_table("zones")

    def test_disconnected_tables(self, lake):
        lake.register(Table.from_columns("island", {"iso": [f"x{i}" for i in range(20)]}))
        try:
            compiler = AlignmentCompiler(lake, [])
            with pytest.raises(AlignmentError, match="no discovered join path"):
                compiler.compile(
                    spec("t", [("amount", "orders.amount"), ("iso", "island.iso")])
                )
        finally:
            lake.drop_table("island")

    def test_duplicate_target_columns(self, compiler):
        with pytest.raises(AlignmentError, match="duplicate"):
            compiler.compile(
                spec("t", [("amount", "orders.amount"), ("AMOUNT", "orders.amount")])
            )


class TestPlantedChains:
    """Alignment on generated 3-hop planted chains (scenario ground truth)."""

    @pytest.fixture
    def scenario(self):
        from repro.scenarios import ScenarioCell, build_scenario

        cell = ScenarioCell(
            endpoint_known=True,
            relation_known=True,
            hops=3,
            intent="enrich",
            entity_class="subject",
            relation_type="custody",
        )
        return build_scenario(cell, seed=13)

    def endpoint_spec(self, scenario):
        (root, root_col), (deep, deep_col) = scenario.request_columns()
        return spec(
            f"linked_{root}_{deep}",
            [(root_col, f"{root}.{root_col}"), (deep_col, f"{deep}.{deep_col}")],
            base=[root, deep],
        )

    def test_three_hop_chain_connects_through_both_bridges(self, scenario):
        compiler = AlignmentCompiler(
            scenario.lake, PreparationPipeline(scenario.lake).join_candidates()
        )
        plan = compiler.compile(self.endpoint_spec(scenario))
        assert set(plan.tables) == set(scenario.chain)  # all 4 chain tables
        assert len(plan.joins) == 3
        compiled = {
            frozenset([(j.left_table, j.left_column), (j.right_table, j.right_column)])
            for j in plan.joins
        }
        assert compiled == scenario.expected_edges()

    def test_three_hop_rows_match_planted_join_oracle(self, scenario):
        compiler = AlignmentCompiler(
            scenario.lake, PreparationPipeline(scenario.lake).join_candidates()
        )
        table = compiler.execute(compiler.compile(self.endpoint_spec(scenario)))
        (_, root_col), (_, deep_col) = scenario.request_columns()
        got = sorted(
            zip(table.column_values(root_col), table.column_values(deep_col)), key=repr
        )
        assert got == sorted(scenario.oracle_rows(), key=repr)

    def test_distractor_bridge_is_not_a_join_path(self):
        # break_chain drops the true first bridge; the remaining
        # "<bridge>_archive" distractor mimics its name and foreign-key
        # column but draws values from a disjoint domain, so discovery
        # finds no containment and alignment must refuse rather than
        # compile a textually plausible, relationally dead hop.
        from repro.scenarios import ScenarioCell, build_scenario

        cell = ScenarioCell(
            endpoint_known=True,
            relation_known=True,
            hops=3,
            intent="enrich",
            entity_class="subject",
            relation_type="custody",
        )
        scenario = build_scenario(cell, seed=13, break_chain=True)
        assert not scenario.lake.has_table(scenario.chain[1])
        assert any(d.endswith("_archive") for d in scenario.distractors)
        compiler = AlignmentCompiler(
            scenario.lake, PreparationPipeline(scenario.lake).join_candidates()
        )
        with pytest.raises(AlignmentError, match="no discovered join path"):
            compiler.compile(self.endpoint_spec(scenario))


class TestPipelineFacade:
    def test_prepare_compiles_and_executes(self, lake):
        pipeline = PreparationPipeline(lake)
        plan, table = pipeline.prepare(
            spec("view", [("order_id", ""), ("amount", "")], base=["orders"])
        )
        assert table.name == "view"
        assert table.num_rows == 90
        stats = pipeline.stats()
        assert stats["plans_compiled"] == 1
        assert stats["plans_executed"] == 1
        assert stats["profile_store"]["size"] == 3
