"""Join/union discovery: planted-truth recovery and sketch-vs-exact agreement."""

import pytest

from repro.datasets.generator import build_planted_catalog
from repro.prep import (
    PreparationPipeline,
    ProfileStore,
    candidate_keys,
    discover_join_candidates,
    discover_union_candidates,
    exact_join_candidates,
)
from repro.relational import Database, Table


@pytest.fixture(scope="module")
def planted():
    return build_planted_catalog(seed=11, n_tables=10, rows=600)


class TestPlantedRecovery:
    def test_sketch_recovers_every_planted_join(self, planted):
        lake, truth = planted
        profiles = ProfileStore().profile_catalog(lake)
        found = candidate_keys(discover_join_candidates(profiles))
        missing = [t for t in truth if t not in found]
        assert not missing, f"sketch discovery missed planted joins: {missing}"

    def test_exact_recovers_every_planted_join(self, planted):
        lake, truth = planted
        found = candidate_keys(exact_join_candidates(lake))
        assert all(t in found for t in truth)

    @pytest.mark.parametrize("seed", [3, 7, 42])
    def test_recovery_across_seeds(self, seed):
        lake, truth = build_planted_catalog(seed=seed, n_tables=6, rows=400)
        profiles = ProfileStore().profile_catalog(lake)
        found = candidate_keys(discover_join_candidates(profiles))
        assert all(t in found for t in truth)

    def test_sketch_agrees_with_exact(self, planted):
        lake, _ = planted
        profiles = ProfileStore().profile_catalog(lake)
        sketch = {c.key(): c for c in discover_join_candidates(profiles)}
        exact = {c.key(): c for c in exact_join_candidates(lake)}
        # Every exact candidate the threshold admits is found, and the
        # estimated scores track the exact ones.
        missed = set(exact) - set(sketch)
        assert not missed, f"sketch path missed exact candidates: {sorted(missed)}"
        for key in exact:
            assert sketch[key].containment == pytest.approx(
                exact[key].containment, abs=0.2
            )


class TestDiscoveryBehavior:
    def test_candidates_are_ranked_by_containment(self, planted):
        lake, _ = planted
        profiles = ProfileStore().profile_catalog(lake)
        candidates = discover_join_candidates(profiles)
        scores = [(c.containment, c.jaccard) for c in candidates]
        assert scores == sorted(scores, key=lambda s: (-s[0], -s[1]))

    def test_no_same_table_candidates(self, planted):
        lake, _ = planted
        profiles = ProfileStore().profile_catalog(lake)
        assert all(
            c.left_table != c.right_table
            for c in discover_join_candidates(profiles)
        )

    def test_type_families_never_mix(self):
        lake = Database("mix")
        lake.register(Table.from_columns("nums", {"v": list(range(100))}))
        lake.register(Table.from_columns("words", {"v": [str(i) for i in range(100)]}))
        profiles = ProfileStore().profile_catalog(lake)
        assert discover_join_candidates(profiles) == []

    def test_min_containment_threshold(self):
        lake = Database("thresh")
        lake.register(Table.from_columns("parent", {"pid": list(range(200))}))
        lake.register(
            Table.from_columns("child", {"ref": [i % 250 for i in range(200)]})
        )
        profiles = ProfileStore().profile_catalog(lake)
        strict = discover_join_candidates(profiles, min_containment=0.99)
        loose = discover_join_candidates(profiles, min_containment=0.3)
        assert len(loose) >= len(strict)

    def test_low_distinct_columns_skipped(self):
        lake = Database("flags")
        lake.register(Table.from_columns("a", {"flag": [1] * 100}))
        lake.register(Table.from_columns("b", {"flag": [1] * 100}))
        profiles = ProfileStore().profile_catalog(lake)
        assert discover_join_candidates(profiles) == []


class TestUnionDiscovery:
    def test_aligned_schemas_pair(self):
        lake = Database("u")
        for name in ("north", "south"):
            lake.register(
                Table.from_columns(
                    name,
                    {
                        "site": [f"{name}-{i}" for i in range(30)],
                        "value": [float(i) for i in range(30)],
                    },
                )
            )
        lake.register(Table.from_columns("other", {"speed": list(range(30))}))
        profiles = ProfileStore().profile_catalog(lake)
        unions = discover_union_candidates(profiles)
        assert [(u.left_table, u.right_table) for u in unions] == [("north", "south")]
        assert unions[0].score == 1.0
        assert set(unions[0].column_pairs) == {("site", "site"), ("value", "value")}


class TestPipelineCaching:
    def test_warm_rediscovery_skips_profile_builds(self, planted):
        lake, _ = planted
        pipeline = PreparationPipeline(lake)
        cold = pipeline.join_candidates()
        before = pipeline.store.stats()["misses"]
        warm = pipeline.join_candidates()
        assert warm is cold  # cached list, not a re-enumeration
        assert pipeline.store.stats()["misses"] == before
        assert pipeline.stats()["discoveries"] == 1

    def test_lake_change_invalidates_candidates(self, planted):
        lake, _ = planted
        pipeline = PreparationPipeline(lake)
        cold = pipeline.join_candidates()
        extra_ids = [9_900_000 + i for i in range(600)]
        lake.register(Table.from_columns("extra", {"extra_id": extra_ids}))
        try:
            warm = pipeline.join_candidates()
            assert warm is not cold
            assert pipeline.stats()["discoveries"] == 2
        finally:
            lake.drop_table("extra")
