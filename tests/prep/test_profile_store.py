"""ProfileStore: fingerprint-keyed caching, invalidation, and counters."""

import pytest

from repro.prep import ProfileStore
from repro.relational import Database, Table


def make_table(name="readings", rows=50, offset=0):
    return Table.from_columns(
        name,
        {
            "reading_id": [offset + i for i in range(rows)],
            "value": [float(i % 7) for i in range(rows)],
            "site": [f"site-{i % 5}" for i in range(rows)],
        },
    )


@pytest.fixture
def store():
    return ProfileStore()


class TestCaching:
    def test_first_profile_is_a_miss(self, store):
        store.profile(make_table())
        assert store.stats() == {"hits": 0, "misses": 1, "size": 1, "version": 1}

    def test_unchanged_table_hits(self, store):
        table = make_table()
        first = store.profile(table)
        second = store.profile(table)
        assert second is first
        stats = store.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_equal_content_hits_across_instances(self, store):
        store.profile(make_table())
        # A different Table object with identical content fingerprints equal.
        store.profile(make_table())
        stats = store.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_profile_catalog_warm_and_cold(self, store):
        lake = Database("lake")
        lake.register(make_table("a"))
        lake.register(make_table("b", offset=1_000))
        cold = store.profile_catalog(lake)
        warm = store.profile_catalog(lake)
        assert set(cold) == {"a", "b"}
        assert warm["a"] is cold["a"]
        stats = store.stats()
        assert (stats["hits"], stats["misses"], stats["size"]) == (2, 2, 2)


class TestInvalidation:
    def test_changed_content_misses_and_supersedes(self, store):
        store.profile(make_table())
        changed = store.profile(make_table(offset=999))  # same name, new rows
        stats = store.stats()
        assert (stats["hits"], stats["misses"]) == (0, 2)
        # The stale entry for the same table name is gone, not retained.
        assert stats["size"] == 1
        assert store.peek("readings") is changed

    def test_version_bumps_only_on_compute(self, store):
        table = make_table()
        assert store.version == 0
        store.profile(table)
        assert store.version == 1
        store.profile(table)  # hit: no recompute, no version change
        assert store.version == 1
        store.profile(make_table(offset=7))
        assert store.version == 2

    def test_evict_drops_and_bumps(self, store):
        store.profile(make_table())
        version = store.version
        store.evict("readings")
        assert store.peek("readings") is None
        assert store.version > version
        store.evict("readings")  # idempotent on absent names
        assert store.stats()["size"] == 0

    def test_clear_resets_counters(self, store):
        store.profile(make_table())
        store.profile(make_table())
        store.clear()
        stats = store.stats()
        assert (stats["hits"], stats["misses"], stats["size"]) == (0, 0, 0)


class TestProfileContents:
    def test_column_statistics(self, store):
        profile = store.profile(make_table(rows=60))
        assert profile.row_count == 60
        ids = profile.column("reading_id")
        assert ids.count == 60
        assert ids.nulls == 0
        assert (ids.minimum, ids.maximum) == (0, 59)
        assert ids.distinct_estimate == pytest.approx(60, rel=0.15)
        site = profile.column("site")
        assert site.family == "text"
        assert site.distinct_estimate == pytest.approx(5, rel=0.2)
        assert profile.has_column("VALUE")  # case-insensitive lookup

    def test_null_accounting(self, store):
        table = Table.from_columns(
            "sparse", {"x": [1, None, 3, None], "y": [None, None, None, None]}
        )
        profile = store.profile(table)
        assert profile.column("x").null_fraction == 0.5
        y = profile.column("y")
        assert y.nulls == 4
        assert y.sketch.is_empty()

    def test_to_json_round_trips_basics(self, store):
        payload = store.profile(make_table()).to_json()
        assert payload["name"] == "readings"
        assert {c["name"] for c in payload["columns"]} == {"reading_id", "value", "site"}
