"""Materializer seeding: prep-compiled tables short-circuit the LLM loop."""

import datetime

import pytest

from repro.core import Materializer, SharedState, TargetColumn, TargetTable
from repro.core.session import build_seeker_llm
from repro.datasets import build_procurement_lake
from repro.prep import PreparationPipeline
from repro.relational import Database, Table
from repro.retriever import table_payload
from repro.service import PneumaService


@pytest.fixture
def lake():
    db = Database("lake")
    db.register(
        Table.from_columns(
            "orders",
            {
                "country": ["Germany", "Japan", "Germany"],
                "price": [100.0, 200.0, 300.0],
                "order_date": [datetime.date(2024, 1, d) for d in (1, 2, 3)],
            },
        )
    )
    return db


def make_materializer(lake, prep="default"):
    state = SharedState()
    if prep == "default":
        prep = PreparationPipeline(lake)
    return Materializer(build_seeker_llm(), lake, state, prep=prep), state


def spec(columns, integration=None):
    return TargetTable(
        name="orders_target",
        columns=[TargetColumn(c, "DOUBLE") for c in columns],
        base_tables=["orders"],
        integration=dict(integration or {}),
    )


def orders_docs(lake):
    return [{"doc_id": "table:orders", "kind": "table", "title": "orders",
             "text": "", "payload": table_payload(lake.resolve_table("orders"))}]


class TestSeededPath:
    def test_compilable_spec_seeds_without_llm(self, lake):
        materializer, state = make_materializer(lake)
        outcome = materializer.materialize(spec(["country", "price"]), None, [])
        assert outcome.ok
        assert outcome.seeded is True
        assert outcome.attempts == 0  # the LLM loop never ran
        assert outcome.plan_sql and "SELECT" in outcome.plan_sql
        assert state.is_materialized("orders_target")
        table = state.materialized.resolve_table("orders_target")
        assert table.column_names() == ["country", "price"]
        assert table.num_rows == 3

    def test_seeded_content_matches_source(self, lake):
        materializer, state = make_materializer(lake)
        materializer.materialize(spec(["price"]), None, [])
        table = state.materialized.resolve_table("orders_target")
        assert sorted(v for (v,) in table.rows) == [100.0, 200.0, 300.0]

    def test_join_integration_hint_still_seeds(self, lake):
        lake.register(
            Table.from_columns(
                "regions",
                {"name": ["Germany", "Japan"], "zone": ["EU", "APAC"]},
            )
        )
        materializer, _ = make_materializer(lake)
        target = TargetTable(
            name="orders_target",
            columns=[
                TargetColumn("price", "DOUBLE", source="orders.price"),
                TargetColumn("zone", "TEXT", source="regions.zone"),
            ],
            base_tables=["orders"],
            integration={
                "join": {"table": "regions", "left_on": "country", "right_on": "name"}
            },
        )
        outcome = materializer.materialize(target, None, [])
        assert outcome.seeded is True
        assert "JOIN regions" in outcome.plan_sql


class TestFallbackToLoop:
    def test_loop_only_plan_keys_bypass_seeding(self, lake):
        materializer, _ = make_materializer(lake)
        plan = {
            "table": "orders",
            "aggregate": None,
            "filters": [{"column": "country", "value": "Germany"}],
        }
        outcome = materializer.materialize(spec(["price"]), plan, orders_docs(lake))
        assert outcome.seeded is False
        assert outcome.attempts >= 1  # the LLM loop did the work
        assert outcome.ok

    def test_alignment_error_falls_back_silently(self, lake):
        materializer, _ = make_materializer(lake)
        # 'ghost' resolves nowhere -> AlignmentError -> LLM loop (which also
        # fails here, but the point is seeding never claimed the outcome).
        outcome = materializer.materialize(spec(["ghost"]), None, [])
        assert outcome.seeded is False
        assert outcome.attempts >= 1

    def test_non_join_integration_hint_bypasses_seeding(self, lake):
        materializer, _ = make_materializer(lake)
        outcome = materializer.materialize(
            spec(["price"], integration={"interpolate": {"column": "price"}}),
            None,
            orders_docs(lake),
        )
        assert outcome.seeded is False

    def test_without_prep_never_seeds(self, lake):
        materializer, _ = make_materializer(lake, prep=None)
        outcome = materializer.materialize(spec(["price"]), None, orders_docs(lake))
        assert outcome.ok
        assert outcome.seeded is False
        assert outcome.attempts >= 1


class TestServiceIntegration:
    def test_service_exposes_prep_stats(self):
        svc = PneumaService(build_procurement_lake(), max_workers=2)
        try:
            stats = svc.stats()
            store = stats["profile_store"]
            assert set(store) == {"hits", "misses", "size", "version"}
            assert store["size"] > 0  # eagerly profiled at build time
            prep = stats["prep"]
            assert prep["discoveries"] == 1
            assert prep["profile_store"] == store
        finally:
            svc.shutdown()

    def test_sessions_share_the_service_pipeline(self):
        svc = PneumaService(build_procurement_lake(), max_workers=2)
        try:
            sid = svc.open_session()
            session = svc._sessions[sid].session
            assert session.materializer.prep is svc.prep
            svc.close_session(sid)
        finally:
            svc.shutdown()
