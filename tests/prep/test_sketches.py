"""Equivalence battery: sketch estimates vs. exact set computations.

The sketches are only useful if their estimates stay inside predictable
error bands across value types, set sizes, and seeds — these tests pin
the bands the discovery thresholds were tuned against (k=256 MinHash:
sigma ~= 0.03 on Jaccard; p=10 HLL: sigma ~= 3.2% on cardinality).
"""

import datetime
import random

import pytest

from repro.prep import (
    ColumnSketch,
    encode_values,
    exact_containment,
    exact_jaccard,
)

JACCARD_TOL = 0.12  # ~4 sigma at k=256
CONTAINMENT_TOL = 0.15  # Jaccard + two HLL estimates compound
CARDINALITY_REL_TOL = 0.15  # ~4.5 sigma at p=10


def int_universe(n, seed):
    rng = random.Random(seed)
    return [rng.randrange(10 * n) for _ in range(n)]


def overlapping(values, overlap, seed):
    """Two lists sharing ``overlap`` fraction of a shuffled universe."""
    rng = random.Random(seed)
    pool = sorted(set(values))
    rng.shuffle(pool)
    keep = int(len(pool) * overlap)
    third = (len(pool) - keep) // 2 or 1
    a = pool[: keep + third]
    b = pool[:keep] + pool[keep + third : keep + 2 * third]
    return a, b


def as_type(values, kind):
    if kind == "int":
        return values
    if kind == "float":
        return [float(v) + 0.5 for v in values]
    if kind == "str":
        return [f"value-{v:08d}" for v in values]
    if kind == "date":
        epoch = datetime.date(1970, 1, 1)
        return [epoch + datetime.timedelta(days=v % 500_000) for v in values]
    raise AssertionError(kind)


class TestJaccardEquivalence:
    @pytest.mark.parametrize("n", [200, 1_000, 5_000])
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_jaccard_within_tolerance(self, n, seed):
        a, b = overlapping(int_universe(n, seed), overlap=0.5, seed=seed)
        sa, sb = ColumnSketch.from_values(a), ColumnSketch.from_values(b)
        assert sa.jaccard(sb) == pytest.approx(exact_jaccard(a, b), abs=JACCARD_TOL)

    @pytest.mark.parametrize("kind", ["int", "float", "str", "date"])
    def test_jaccard_across_types(self, kind):
        a, b = overlapping(int_universe(2_000, 7), overlap=0.6, seed=7)
        a, b = as_type(a, kind), as_type(b, kind)
        sa, sb = ColumnSketch.from_values(a), ColumnSketch.from_values(b)
        assert sa.jaccard(sb) == pytest.approx(exact_jaccard(a, b), abs=JACCARD_TOL)

    @pytest.mark.parametrize("overlap", [0.0, 0.25, 0.75, 1.0])
    def test_jaccard_tracks_overlap(self, overlap):
        a, b = overlapping(int_universe(3_000, 13), overlap=overlap, seed=13)
        sa, sb = ColumnSketch.from_values(a), ColumnSketch.from_values(b)
        assert sa.jaccard(sb) == pytest.approx(exact_jaccard(a, b), abs=JACCARD_TOL)

    def test_disjoint_sets_estimate_zero(self):
        sa = ColumnSketch.from_values(list(range(0, 3_000)))
        sb = ColumnSketch.from_values(list(range(10_000, 13_000)))
        assert sa.jaccard(sb) == pytest.approx(0.0, abs=0.02)

    def test_identical_sets_estimate_one(self):
        values = int_universe(2_000, 5)
        sa = ColumnSketch.from_values(values)
        sb = ColumnSketch.from_values(list(reversed(values)))
        assert sa.jaccard(sb) == 1.0


class TestContainmentEquivalence:
    @pytest.mark.parametrize("n", [500, 2_000, 8_000])
    @pytest.mark.parametrize("seed", [1, 17, 23])
    def test_subset_containment(self, n, seed):
        rng = random.Random(seed)
        parent = list(range(n))
        child = [rng.choice(parent) for _ in range(n // 2)]
        sc, sp = ColumnSketch.from_values(child), ColumnSketch.from_values(parent)
        assert sc.containment_in(sp) == pytest.approx(1.0, abs=CONTAINMENT_TOL)
        assert exact_containment(child, parent) == 1.0

    @pytest.mark.parametrize("overlap", [0.3, 0.6, 0.9])
    def test_partial_containment(self, overlap):
        a, b = overlapping(int_universe(4_000, 31), overlap=overlap, seed=31)
        sa, sb = ColumnSketch.from_values(a), ColumnSketch.from_values(b)
        assert sa.containment_in(sb) == pytest.approx(
            exact_containment(a, b), abs=CONTAINMENT_TOL
        )


class TestCardinality:
    @pytest.mark.parametrize("n", [100, 1_000, 20_000])
    @pytest.mark.parametrize("seed", [2, 19])
    def test_distinct_estimate(self, n, seed):
        values = int_universe(n, seed)
        sketch = ColumnSketch.from_values(values)
        assert sketch.cardinality() == pytest.approx(
            len(set(values)), rel=CARDINALITY_REL_TOL
        )

    def test_duplicates_do_not_inflate(self):
        values = [v % 50 for v in range(5_000)]
        sketch = ColumnSketch.from_values(values)
        assert sketch.cardinality() == pytest.approx(50, rel=CARDINALITY_REL_TOL)

    def test_union_cardinality_via_merge(self):
        a = list(range(0, 3_000))
        b = list(range(1_500, 4_500))
        sa, sb = ColumnSketch.from_values(a), ColumnSketch.from_values(b)
        assert sa.union_cardinality(sb) == pytest.approx(4_500, rel=CARDINALITY_REL_TOL)
        merged = sa.merge(sb)
        assert merged.total == sa.total + sb.total


class TestDeterminismAndEdges:
    def test_order_independent(self):
        values = int_universe(1_000, 41)
        shuffled = list(values)
        random.Random(99).shuffle(shuffled)
        sa, sb = ColumnSketch.from_values(values), ColumnSketch.from_values(shuffled)
        assert (sa.signature == sb.signature).all()
        assert (sa.registers == sb.registers).all()

    def test_numeric_storage_types_coalesce(self):
        ints = list(range(500))
        floats = [float(v) for v in range(500)]
        si, sf = ColumnSketch.from_values(ints), ColumnSketch.from_values(floats)
        assert si.jaccard(sf) == 1.0

    def test_nulls_counted_not_sketched(self):
        values = [1, None, 2, None, 3]
        sketch = ColumnSketch.from_values(values)
        assert sketch.total == 5
        assert sketch.nulls == 2
        assert sketch.cardinality() == pytest.approx(3, rel=CARDINALITY_REL_TOL)

    def test_all_null_column_is_empty(self):
        sketch = ColumnSketch.from_values([None, None])
        assert sketch.is_empty()
        assert sketch.cardinality() == 0.0
        other = ColumnSketch.from_values([1, 2, 3])
        assert sketch.jaccard(other) == 0.0
        assert sketch.jaccard(ColumnSketch.from_values([])) == 1.0

    def test_mixed_type_column_falls_back(self):
        values = [1, "one", datetime.date(2024, 1, 1), 2.5, None]
        sketch = ColumnSketch.from_values(values)
        assert sketch.total == 5
        assert sketch.nulls == 1
        assert sketch.cardinality() == pytest.approx(4, rel=0.3)

    def test_family_mismatch_rejected(self):
        a = ColumnSketch.from_values([1, 2, 3], k=128)
        b = ColumnSketch.from_values([1, 2, 3], k=256)
        with pytest.raises(ValueError):
            a.jaccard(b)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_encode_values_sorted_and_deterministic(self):
        keys = encode_values([3, 1, 2, None, 2])
        assert (keys[:-1] <= keys[1:]).all()
        again = encode_values([2, None, 1, 3, 2])
        assert set(keys.tolist()) == set(again.tolist())
