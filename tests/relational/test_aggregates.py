"""Unit tests for aggregate functions (via SQL evaluation)."""

import math

import pytest

from repro.relational import Database, Table


@pytest.fixture
def db():
    database = Database()
    database.register(
        Table.from_columns(
            "t",
            {
                "x": [4.0, 2.0, None, 8.0, 6.0],
                "y": [1.0, 2.0, 3.0, 4.0, 5.0],
                "label": ["a", "b", "c", "d", "e"],
            },
        )
    )
    return database


class TestBasicAggregates:
    def test_sum_skips_nulls(self, db):
        assert db.query_value("SELECT SUM(x) FROM t") == 20.0

    def test_avg_skips_nulls(self, db):
        assert db.query_value("SELECT AVG(x) FROM t") == 5.0

    def test_count_variants(self, db):
        assert db.query_value("SELECT COUNT(*) FROM t") == 5
        assert db.query_value("SELECT COUNT(x) FROM t") == 4

    def test_min_max(self, db):
        assert db.query_value("SELECT MIN(x) FROM t") == 2.0
        assert db.query_value("SELECT MAX(x) FROM t") == 8.0

    def test_empty_input(self, db):
        assert db.query_value("SELECT SUM(x) FROM t WHERE x > 100") is None
        assert db.query_value("SELECT AVG(x) FROM t WHERE x > 100") is None
        assert db.query_value("SELECT COUNT(*) FROM t WHERE x > 100") == 0


class TestStatisticalAggregates:
    def test_median_odd_even(self, db):
        assert db.query_value("SELECT MEDIAN(x) FROM t") == 5.0  # 2,4,6,8 -> 5
        assert db.query_value("SELECT MEDIAN(y) FROM t") == 3.0

    def test_stddev_matches_formula(self, db):
        values = [4.0, 2.0, 8.0, 6.0]
        mean = sum(values) / len(values)
        expected = math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))
        assert db.query_value("SELECT STDDEV(x) FROM t") == pytest.approx(expected)

    def test_stddev_single_value_is_null(self, db):
        assert db.query_value("SELECT STDDEV(x) FROM t WHERE x = 2") is None

    def test_var_pop_vs_samp(self, db):
        pop = db.query_value("SELECT VAR_POP(y) FROM t")
        samp = db.query_value("SELECT VAR_SAMP(y) FROM t")
        assert samp > pop

    def test_quantile(self, db):
        assert db.query_value("SELECT QUANTILE(y, 0.5) FROM t") == 3.0
        assert db.query_value("SELECT QUANTILE(y, 0.0) FROM t") == 1.0
        assert db.query_value("SELECT QUANTILE(y, 1.0) FROM t") == 5.0

    def test_corr_perfect(self, db):
        assert db.query_value("SELECT CORR(y, y) FROM t") == pytest.approx(1.0)


class TestPositionalAggregates:
    def test_first_last(self, db):
        assert db.query_value("SELECT FIRST(label) FROM t") == "a"
        assert db.query_value("SELECT LAST(label) FROM t") == "e"

    def test_arg_min_arg_max(self, db):
        assert db.query_value("SELECT ARG_MIN(label, x) FROM t") == "b"
        assert db.query_value("SELECT ARG_MAX(label, x) FROM t") == "d"

    def test_arg_max_ignores_null_keys(self, db):
        # The row with x NULL (label 'c') can never win.
        assert db.query_value("SELECT ARG_MAX(label, x) FROM t") != "c"


class TestOtherAggregates:
    def test_string_agg(self, db):
        assert db.query_value("SELECT STRING_AGG(label, '-') FROM t") == "a-b-c-d-e"

    def test_bool_and_or(self, db):
        assert db.query_value("SELECT BOOL_AND(x > 1) FROM t") is True
        assert db.query_value("SELECT BOOL_OR(x > 7) FROM t") is True
        assert db.query_value("SELECT BOOL_AND(x > 3) FROM t") is False

    def test_sum_distinct(self, db):
        db.register(Table.from_columns("d", {"v": [1, 1, 2, 2, 3]}))
        assert db.query_value("SELECT SUM(DISTINCT v) FROM d") == 6
        assert db.query_value("SELECT COUNT(DISTINCT v) FROM d") == 3
