"""Unit tests for CSV ingestion/export."""

import datetime

from repro.relational import Table, read_csv, read_csv_text, to_csv_text, write_csv
from repro.relational.types import DataType


class TestReadCsvText:
    def test_type_inference(self):
        table = read_csv_text("t", "a,b,c,d\n1,2.5,hello,2020-01-02\n")
        assert table.schema.column("a").dtype == DataType.INTEGER
        assert table.schema.column("b").dtype == DataType.DOUBLE
        assert table.schema.column("c").dtype == DataType.TEXT
        assert table.schema.column("d").dtype == DataType.DATE
        assert table.rows[0][3] == datetime.date(2020, 1, 2)

    def test_empty_cells_are_null(self):
        table = read_csv_text("t", "a,b\n1,\n,2\n")
        assert table.rows == [(1, None), (None, 2)]

    def test_booleans(self):
        table = read_csv_text("t", "flag\ntrue\nfalse\n")
        assert table.column_values("flag") == [True, False]

    def test_mixed_column_becomes_text(self):
        table = read_csv_text("t", "a\n1\nx\n")
        assert table.schema.column("a").dtype == DataType.TEXT

    def test_no_header(self):
        table = read_csv_text("t", "1,2\n3,4\n", header=False)
        assert table.column_names() == ["column0", "column1"]

    def test_short_rows_padded(self):
        table = read_csv_text("t", "a,b\n1\n")
        assert table.rows == [(1, None)]

    def test_empty_input(self):
        table = read_csv_text("t", "")
        assert table.num_rows == 0


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        table = Table.from_columns(
            "data",
            {
                "id": [1, 2],
                "name": ["x", None],
                "score": [1.5, -2.0],
                "day": [datetime.date(2020, 1, 1), datetime.date(2021, 2, 3)],
            },
        )
        path = tmp_path / "data.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.name == "data"
        assert loaded.rows == table.rows

    def test_text_round_trip(self):
        table = Table.from_columns("t", {"a": [1, None], "b": ["x,y", "z"]})
        text = to_csv_text(table)
        loaded = read_csv_text("t", text)
        assert loaded.rows == table.rows
