"""Edge-case coverage for the relational engine: queries the Seeker's
planner and Materializer actually generate, stressed in combination."""

import datetime

import pytest

from repro.relational import Database, Table


@pytest.fixture
def db():
    database = Database()
    database.register(
        Table.from_columns(
            "events",
            {
                "name": ["a", "b", "c", "d"],
                "day": [datetime.date(2020, 1, 1), datetime.date(2020, 6, 1),
                        datetime.date(2021, 1, 1), datetime.date(2021, 6, 1)],
                "value": [1.0, 2.0, 3.0, 4.0],
            },
        )
    )
    return database


class TestPlannerShapedQueries:
    def test_first_last_subquery_pattern(self, db):
        """The exact WHERE shape plan_to_sql emits for first/last questions."""
        value = db.query_value(
            "SELECT AVG(value) AS answer FROM events WHERE "
            "(day = (SELECT MIN(day) FROM events) OR day = (SELECT MAX(day) FROM events))"
        )
        assert value == 2.5

    def test_round_wrapped_aggregate(self, db):
        assert db.query_value("SELECT ROUND(AVG(value), 1) FROM events") == 2.5

    def test_year_filter(self, db):
        assert db.query_value(
            "SELECT COUNT(*) FROM events WHERE YEAR(day) = 2020"
        ) == 2

    def test_derived_measure_expression(self, db):
        value = db.query_value("SELECT AVG(value * (1 + 0.15 - 0.05)) FROM events")
        assert value == pytest.approx(2.75)

    def test_lower_like_filter(self, db):
        assert db.query_value(
            "SELECT COUNT(*) FROM events WHERE LOWER(name) LIKE '%a%'"
        ) == 1

    def test_corr_query(self, db):
        assert db.query_value("SELECT CORR(value, value) FROM events") == pytest.approx(1.0)


class TestComposition:
    def test_nested_ctes(self, db):
        value = db.query_value(
            "WITH early AS (SELECT * FROM events WHERE YEAR(day) = 2020), "
            "big AS (SELECT * FROM early WHERE value > 1) "
            "SELECT SUM(value) FROM big"
        )
        assert value == 2.0

    def test_self_join(self, db):
        result = db.execute(
            "SELECT a.name, b.name FROM events a JOIN events b "
            "ON a.value = b.value - 1 ORDER BY a.name"
        )
        assert result.num_rows == 3

    def test_subquery_of_subquery(self, db):
        value = db.query_value(
            "SELECT COUNT(*) FROM (SELECT * FROM (SELECT value FROM events) x "
            "WHERE value > 1) y"
        )
        assert value == 3

    def test_union_of_aggregates(self, db):
        result = db.execute(
            "SELECT MIN(value) FROM events UNION ALL SELECT MAX(value) FROM events"
        )
        assert sorted(r[0] for r in result.rows) == [1.0, 4.0]

    def test_aggregate_of_case(self, db):
        value = db.query_value(
            "SELECT SUM(CASE WHEN YEAR(day) = 2020 THEN value ELSE 0 END) FROM events"
        )
        assert value == 3.0

    def test_case_of_aggregate(self, db):
        value = db.query_value(
            "SELECT CASE WHEN AVG(value) > 2 THEN 'high' ELSE 'low' END FROM events"
        )
        assert value == "high"

    def test_group_by_date_part(self, db):
        result = db.execute(
            "SELECT YEAR(day) AS y, SUM(value) AS s FROM events GROUP BY YEAR(day) "
            "ORDER BY y"
        )
        assert result.to_dicts() == [{"y": 2020, "s": 3.0}, {"y": 2021, "s": 7.0}]


class TestIdentifierHandling:
    def test_case_insensitive_table_and_column(self, db):
        assert db.query_value("SELECT SUM(VALUE) FROM EVENTS") == 10.0

    def test_quoted_identifier_preserves_case(self):
        database = Database()
        database.register(Table.from_columns("t", {"Mixed Case": [1, 2]}))
        assert database.query_value('SELECT SUM("Mixed Case") FROM t') == 3

    def test_keyword_like_column_names(self):
        # 'first' and 'last' are soft keywords usable as identifiers.
        database = Database()
        database.register(Table.from_columns("t", {"first": [1], "last": [2]}))
        assert database.query_value("SELECT first + last FROM t") == 3


class TestEmptyInputs:
    def test_empty_table_operations(self):
        database = Database()
        database.register(Table.from_columns("empty", {"x": []}))
        assert database.query_value("SELECT COUNT(*) FROM empty") == 0
        assert database.query_value("SELECT SUM(x) FROM empty") is None
        assert database.execute("SELECT * FROM empty ORDER BY x LIMIT 5").num_rows == 0

    def test_join_with_empty_side(self):
        database = Database()
        database.register(Table.from_columns("a", {"k": [1, 2]}))
        database.register(Table.from_columns("empty", {"k": []}))
        assert database.query_value("SELECT COUNT(*) FROM a JOIN empty ON a.k = empty.k") == 0
        assert database.query_value(
            "SELECT COUNT(*) FROM a LEFT JOIN empty ON a.k = empty.k"
        ) == 2

    def test_group_by_on_empty(self):
        database = Database()
        database.register(Table.from_columns("empty", {"g": [], "x": []}))
        result = database.execute("SELECT g, SUM(x) FROM empty GROUP BY g")
        assert result.num_rows == 0
