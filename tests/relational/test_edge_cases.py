"""Edge-case coverage for the relational engine: queries the Seeker's
planner and Materializer actually generate, stressed in combination."""

import datetime

import pytest

from repro.relational import Database, Table


@pytest.fixture
def db():
    database = Database()
    database.register(
        Table.from_columns(
            "events",
            {
                "name": ["a", "b", "c", "d"],
                "day": [datetime.date(2020, 1, 1), datetime.date(2020, 6, 1),
                        datetime.date(2021, 1, 1), datetime.date(2021, 6, 1)],
                "value": [1.0, 2.0, 3.0, 4.0],
            },
        )
    )
    return database


class TestPlannerShapedQueries:
    def test_first_last_subquery_pattern(self, db):
        """The exact WHERE shape plan_to_sql emits for first/last questions."""
        value = db.query_value(
            "SELECT AVG(value) AS answer FROM events WHERE "
            "(day = (SELECT MIN(day) FROM events) OR day = (SELECT MAX(day) FROM events))"
        )
        assert value == 2.5

    def test_round_wrapped_aggregate(self, db):
        assert db.query_value("SELECT ROUND(AVG(value), 1) FROM events") == 2.5

    def test_year_filter(self, db):
        assert db.query_value(
            "SELECT COUNT(*) FROM events WHERE YEAR(day) = 2020"
        ) == 2

    def test_derived_measure_expression(self, db):
        value = db.query_value("SELECT AVG(value * (1 + 0.15 - 0.05)) FROM events")
        assert value == pytest.approx(2.75)

    def test_lower_like_filter(self, db):
        assert db.query_value(
            "SELECT COUNT(*) FROM events WHERE LOWER(name) LIKE '%a%'"
        ) == 1

    def test_corr_query(self, db):
        assert db.query_value("SELECT CORR(value, value) FROM events") == pytest.approx(1.0)


class TestComposition:
    def test_nested_ctes(self, db):
        value = db.query_value(
            "WITH early AS (SELECT * FROM events WHERE YEAR(day) = 2020), "
            "big AS (SELECT * FROM early WHERE value > 1) "
            "SELECT SUM(value) FROM big"
        )
        assert value == 2.0

    def test_self_join(self, db):
        result = db.execute(
            "SELECT a.name, b.name FROM events a JOIN events b "
            "ON a.value = b.value - 1 ORDER BY a.name"
        )
        assert result.num_rows == 3

    def test_subquery_of_subquery(self, db):
        value = db.query_value(
            "SELECT COUNT(*) FROM (SELECT * FROM (SELECT value FROM events) x "
            "WHERE value > 1) y"
        )
        assert value == 3

    def test_union_of_aggregates(self, db):
        result = db.execute(
            "SELECT MIN(value) FROM events UNION ALL SELECT MAX(value) FROM events"
        )
        assert sorted(r[0] for r in result.rows) == [1.0, 4.0]

    def test_aggregate_of_case(self, db):
        value = db.query_value(
            "SELECT SUM(CASE WHEN YEAR(day) = 2020 THEN value ELSE 0 END) FROM events"
        )
        assert value == 3.0

    def test_case_of_aggregate(self, db):
        value = db.query_value(
            "SELECT CASE WHEN AVG(value) > 2 THEN 'high' ELSE 'low' END FROM events"
        )
        assert value == "high"

    def test_group_by_date_part(self, db):
        result = db.execute(
            "SELECT YEAR(day) AS y, SUM(value) AS s FROM events GROUP BY YEAR(day) "
            "ORDER BY y"
        )
        assert result.to_dicts() == [{"y": 2020, "s": 3.0}, {"y": 2021, "s": 7.0}]


class TestIdentifierHandling:
    def test_case_insensitive_table_and_column(self, db):
        assert db.query_value("SELECT SUM(VALUE) FROM EVENTS") == 10.0

    def test_quoted_identifier_preserves_case(self):
        database = Database()
        database.register(Table.from_columns("t", {"Mixed Case": [1, 2]}))
        assert database.query_value('SELECT SUM("Mixed Case") FROM t') == 3

    def test_keyword_like_column_names(self):
        # 'first' and 'last' are soft keywords usable as identifiers.
        database = Database()
        database.register(Table.from_columns("t", {"first": [1], "last": [2]}))
        assert database.query_value("SELECT first + last FROM t") == 3


class TestEmptyInputs:
    def test_empty_table_operations(self):
        database = Database()
        database.register(Table.from_columns("empty", {"x": []}))
        assert database.query_value("SELECT COUNT(*) FROM empty") == 0
        assert database.query_value("SELECT SUM(x) FROM empty") is None
        assert database.execute("SELECT * FROM empty ORDER BY x LIMIT 5").num_rows == 0

    def test_join_with_empty_side(self):
        database = Database()
        database.register(Table.from_columns("a", {"k": [1, 2]}))
        database.register(Table.from_columns("empty", {"k": []}))
        assert database.query_value("SELECT COUNT(*) FROM a JOIN empty ON a.k = empty.k") == 0
        assert database.query_value(
            "SELECT COUNT(*) FROM a LEFT JOIN empty ON a.k = empty.k"
        ) == 2

    def test_group_by_on_empty(self):
        database = Database()
        database.register(Table.from_columns("empty", {"g": [], "x": []}))
        result = database.execute("SELECT g, SUM(x) FROM empty GROUP BY g")
        assert result.num_rows == 0


class TestSetOpsWithOrderLimit:
    """Set operations combined with ORDER BY / LIMIT on the merged result."""

    @pytest.fixture
    def setdb(self):
        database = Database()
        database.register(Table.from_columns("a", {"x": [3, 1, 2, 2]}))
        database.register(Table.from_columns("b", {"x": [2, 4, 1]}))
        return database

    def test_union_order_by_limit(self, setdb):
        result = setdb.execute(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC LIMIT 2"
        )
        assert [r[0] for r in result.rows] == [4, 3]

    def test_union_all_order_by_offset(self, setdb):
        result = setdb.execute(
            "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x LIMIT 3 OFFSET 2"
        )
        assert [r[0] for r in result.rows] == [2, 2, 2]

    def test_except_order_by_column_name(self, setdb):
        result = setdb.execute(
            "SELECT x AS v FROM a EXCEPT SELECT x FROM b ORDER BY v"
        )
        assert [r[0] for r in result.rows] == [3]

    def test_intersect_order_by_ordinal(self, setdb):
        result = setdb.execute(
            "SELECT x FROM a INTERSECT SELECT x FROM b ORDER BY 1 DESC"
        )
        assert [r[0] for r in result.rows] == [2, 1]

    def test_order_after_set_op_requires_output_column(self, setdb):
        from repro.relational.errors import BindError

        with pytest.raises(BindError):
            setdb.execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY x + 1")

    def test_arm_keeps_left_column_names(self, setdb):
        result = setdb.execute("SELECT x AS left_name FROM a UNION SELECT x FROM b")
        assert result.column_names() == ["left_name"]


class TestThreeValuedLogic:
    """NULL propagation through WHERE and HAVING (rows kept only on TRUE)."""

    @pytest.fixture
    def nulldb(self):
        database = Database()
        database.register(
            Table.from_columns(
                "t", {"g": ["a", "a", "b", "b", None], "x": [1, None, 3, None, 5]}
            )
        )
        return database

    def test_where_null_comparison_drops_row(self, nulldb):
        # x > 2 is NULL (not TRUE) for NULL x: those rows are dropped.
        result = nulldb.execute("SELECT x FROM t WHERE x > 2")
        assert sorted(r[0] for r in result.rows) == [3, 5]

    def test_where_not_null_is_still_null(self, nulldb):
        # NOT (NULL) is NULL, so the NULL-x rows stay dropped.
        result = nulldb.execute("SELECT x FROM t WHERE NOT (x > 2)")
        assert [r[0] for r in result.rows] == [1]

    def test_where_null_or_true_keeps_row(self, nulldb):
        # NULL OR TRUE = TRUE: three-valued OR can rescue a NULL side.
        result = nulldb.execute("SELECT x FROM t WHERE x > 2 OR g = 'a'")
        values = sorted((r[0] for r in result.rows), key=lambda v: (v is None, v or 0))
        assert values == [1, 3, 5, None]

    def test_where_null_and_false_is_false(self, nulldb):
        result = nulldb.execute("SELECT x FROM t WHERE x > 2 AND g = 'zzz'")
        assert result.num_rows == 0

    def test_having_null_drops_group(self, nulldb):
        # MIN(x) of group 'b' is 3; comparing a NULL HAVING expression
        # (SUM of all-NULL would be NULL) must drop the group, not error.
        database = Database()
        database.register(
            Table.from_columns("t", {"g": ["a", "b"], "x": [1, None]})
        )
        result = database.execute("SELECT g FROM t GROUP BY g HAVING SUM(x) > 0")
        assert [r[0] for r in result.rows] == ["a"]

    def test_null_group_key_forms_its_own_group(self, nulldb):
        result = nulldb.execute("SELECT g, COUNT(*) FROM t GROUP BY g")
        keys = {r[0] for r in result.rows}
        assert keys == {"a", "b", None}


class TestLikeMetacharacters:
    """LIKE patterns containing regex metacharacters must match literally."""

    @pytest.fixture
    def likedb(self):
        database = Database()
        database.register(
            Table.from_columns(
                "files",
                {
                    "path": [
                        "a.c",
                        "abc",
                        "report (final).txt",
                        "report-final.txt",
                        "cost+tax",
                        "cost_tax",
                        "100% done",
                        "100x done",
                    ]
                },
            )
        )
        return database

    def test_dot_is_literal(self, likedb):
        result = likedb.execute("SELECT path FROM files WHERE path LIKE 'a.c'")
        assert [r[0] for r in result.rows] == ["a.c"]

    def test_parens_and_plus_are_literal(self, likedb):
        result = likedb.execute("SELECT path FROM files WHERE path LIKE '%(final)%'")
        assert [r[0] for r in result.rows] == ["report (final).txt"]
        result = likedb.execute("SELECT path FROM files WHERE path LIKE 'cost+%'")
        assert [r[0] for r in result.rows] == ["cost+tax"]

    def test_percent_is_wildcard_underscore_is_single(self, likedb):
        result = likedb.execute("SELECT path FROM files WHERE path LIKE '100% done'")
        # '%' stays a wildcard: both '100% done' and '100x done' match.
        assert sorted(r[0] for r in result.rows) == ["100% done", "100x done"]
        result = likedb.execute("SELECT path FROM files WHERE path LIKE 'cost_tax'")
        assert sorted(r[0] for r in result.rows) == ["cost+tax", "cost_tax"]

    def test_dynamic_pattern_with_metacharacters(self, likedb):
        # Non-literal pattern exercises the per-row regex cache path.
        likedb.register(Table.from_columns("pat", {"p": ["a.c"]}))
        result = likedb.execute(
            "SELECT path FROM files WHERE path LIKE (SELECT p FROM pat)"
        )
        assert [r[0] for r in result.rows] == ["a.c"]
