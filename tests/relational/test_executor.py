"""Unit tests for query execution semantics."""

import datetime

import pytest

from repro.relational import Database, Table
from repro.relational.errors import BindError, CatalogError, ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.register(
        Table.from_columns(
            "orders",
            {
                "id": [1, 2, 3, 4, 5],
                "customer": ["ann", "bob", "ann", "cat", None],
                "amount": [10.0, 20.0, 30.0, None, 50.0],
                "country": ["DE", "US", "DE", "FR", "DE"],
            },
        )
    )
    database.register(
        Table.from_columns(
            "customers",
            {
                "name": ["ann", "bob", "dan"],
                "city": ["Berlin", "Boston", "Denver"],
            },
        )
    )
    return database


class TestProjectionAndFilter:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM orders")
        assert result.num_rows == 5
        assert result.column_names() == ["id", "customer", "amount", "country"]

    def test_expression_projection(self, db):
        result = db.execute("SELECT id * 2 AS double_id FROM orders WHERE id <= 2")
        assert result.column_values("double_id") == [2, 4]

    def test_where_null_filtered(self, db):
        # amount > 15 is NULL for the NULL amount, so that row is dropped.
        result = db.execute("SELECT id FROM orders WHERE amount > 15")
        assert result.column_values("id") == [2, 3, 5]

    def test_select_without_from(self, db):
        assert db.query_value("SELECT 1 + 1") == 2

    def test_alias_reference_in_order_by(self, db):
        result = db.execute("SELECT id AS key FROM orders ORDER BY key DESC")
        assert result.column_values("key") == [5, 4, 3, 2, 1]

    def test_derived_column_name(self, db):
        result = db.execute("SELECT SUM(amount) FROM orders")
        assert result.column_names() == ["sum(amount)"]

    def test_qualified_star(self, db):
        result = db.execute(
            "SELECT o.* FROM orders o JOIN customers c ON o.customer = c.name"
        )
        assert result.column_names() == ["id", "customer", "amount", "country"]

    def test_unknown_column_raises(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT nope FROM orders")

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT 1 FROM nonexistent")

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT name FROM customers a JOIN customers b ON a.name = b.name")


class TestJoins:
    def test_inner_join(self, db):
        result = db.execute(
            "SELECT o.id, c.city FROM orders o JOIN customers c ON o.customer = c.name "
            "ORDER BY o.id"
        )
        assert result.column_values("id") == [1, 2, 3]
        assert result.column_values("city") == ["Berlin", "Boston", "Berlin"]

    def test_left_join_pads_nulls(self, db):
        result = db.execute(
            "SELECT o.id, c.city FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.name ORDER BY o.id"
        )
        assert result.num_rows == 5
        assert result.column_values("city")[3:] == [None, None]

    def test_right_join(self, db):
        result = db.execute(
            "SELECT c.name, o.id FROM orders o RIGHT JOIN customers c "
            "ON o.customer = c.name ORDER BY c.name, o.id"
        )
        names = result.column_values("name")
        assert "dan" in names  # unmatched right row survives

    def test_full_join(self, db):
        result = db.execute(
            "SELECT o.id, c.name FROM orders o FULL JOIN customers c "
            "ON o.customer = c.name"
        )
        ids = result.column_values("id")
        names = result.column_values("name")
        assert None in ids  # dan row
        assert None in names  # cat and NULL-customer rows

    def test_null_keys_never_match(self, db):
        result = db.execute(
            "SELECT o.id FROM orders o JOIN customers c ON o.customer = c.name"
        )
        assert 5 not in result.column_values("id")

    def test_cross_join_cardinality(self, db):
        result = db.execute("SELECT 1 FROM orders, customers")
        assert result.num_rows == 15

    def test_using_dedups_column(self):
        db = Database()
        db.register(Table.from_columns("a", {"k": [1, 2], "x": ["p", "q"]}))
        db.register(Table.from_columns("b", {"k": [2, 3], "y": ["r", "s"]}))
        result = db.execute("SELECT * FROM a JOIN b USING (k)")
        assert result.column_names() == ["k", "x", "y"]
        assert result.rows == [(2, "q", "r")]

    def test_non_equi_join(self):
        db = Database()
        db.register(Table.from_columns("a", {"x": [1, 2, 3]}))
        db.register(Table.from_columns("b", {"y": [2]}))
        result = db.execute("SELECT x FROM a JOIN b ON a.x < b.y")
        assert result.column_values("x") == [1]

    def test_equi_plus_residual_condition(self, db):
        result = db.execute(
            "SELECT o.id FROM orders o JOIN customers c "
            "ON o.customer = c.name AND o.amount > 15 ORDER BY o.id"
        )
        assert result.column_values("id") == [2, 3]


class TestAggregation:
    def test_global_aggregates(self, db):
        result = db.execute(
            "SELECT COUNT(*) AS n, COUNT(amount) AS na, SUM(amount) AS s, "
            "AVG(amount) AS a, MIN(amount) AS lo, MAX(amount) AS hi FROM orders"
        )
        row = result.to_dicts()[0]
        assert row["n"] == 5
        assert row["na"] == 4  # NULL skipped
        assert row["s"] == 110.0
        assert row["a"] == 27.5
        assert (row["lo"], row["hi"]) == (10.0, 50.0)

    def test_group_by(self, db):
        result = db.execute(
            "SELECT country, COUNT(*) AS n FROM orders GROUP BY country ORDER BY country"
        )
        assert result.to_dicts() == [
            {"country": "DE", "n": 3},
            {"country": "FR", "n": 1},
            {"country": "US", "n": 1},
        ]

    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT id % 2 AS parity, COUNT(*) AS n FROM orders GROUP BY id % 2 "
            "ORDER BY parity"
        )
        assert result.to_dicts() == [{"parity": 0, "n": 2}, {"parity": 1, "n": 3}]

    def test_having(self, db):
        result = db.execute(
            "SELECT country FROM orders GROUP BY country HAVING COUNT(*) > 1"
        )
        assert result.column_values("country") == ["DE"]

    def test_empty_group_aggregate(self, db):
        result = db.execute("SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders WHERE id > 99")
        assert result.to_dicts() == [{"n": 0, "s": None}]

    def test_count_distinct(self, db):
        assert db.query_value("SELECT COUNT(DISTINCT country) FROM orders") == 3

    def test_median(self, db):
        assert db.query_value("SELECT MEDIAN(amount) FROM orders") == 25.0

    def test_arg_max(self, db):
        assert db.query_value("SELECT ARG_MAX(customer, amount) FROM orders") is None
        assert db.query_value(
            "SELECT ARG_MAX(id, amount) FROM orders WHERE customer IS NOT NULL"
        ) == 3

    def test_bare_column_outside_group_raises(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT customer, COUNT(*) FROM orders GROUP BY country")

    def test_group_by_alias(self, db):
        result = db.execute(
            "SELECT country AS c, COUNT(*) AS n FROM orders GROUP BY c ORDER BY c"
        )
        assert result.column_values("c") == ["DE", "FR", "US"]

    def test_order_by_aggregate(self, db):
        result = db.execute(
            "SELECT country FROM orders GROUP BY country ORDER BY SUM(amount) DESC NULLS LAST"
        )
        assert result.column_values("country")[0] == "DE"

    def test_having_without_group_raises(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT id FROM orders HAVING id > 1")


class TestOrderingAndLimits:
    def test_order_nulls_last_default(self, db):
        result = db.execute("SELECT amount FROM orders ORDER BY amount")
        assert result.column_values("amount") == [10.0, 20.0, 30.0, 50.0, None]

    def test_order_nulls_first(self, db):
        result = db.execute("SELECT amount FROM orders ORDER BY amount NULLS FIRST")
        assert result.column_values("amount")[0] is None

    def test_order_desc(self, db):
        result = db.execute("SELECT id FROM orders ORDER BY id DESC LIMIT 2")
        assert result.column_values("id") == [5, 4]

    def test_order_by_ordinal(self, db):
        result = db.execute("SELECT id, amount FROM orders ORDER BY 2 DESC NULLS LAST LIMIT 1")
        assert result.column_values("id") == [5]

    def test_offset(self, db):
        result = db.execute("SELECT id FROM orders ORDER BY id LIMIT 2 OFFSET 2")
        assert result.column_values("id") == [3, 4]

    def test_multi_key_order(self, db):
        result = db.execute(
            "SELECT country, id FROM orders ORDER BY country ASC, id DESC"
        )
        assert result.rows[0] == ("DE", 5)


class TestDistinctAndSetOps:
    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT country FROM orders ORDER BY country")
        assert result.column_values("country") == ["DE", "FR", "US"]

    def test_union_dedups(self):
        db = Database()
        result = db.execute("SELECT 1 AS x UNION SELECT 1 UNION SELECT 2")
        assert sorted(result.column_values("x")) == [1, 2]

    def test_union_all_keeps(self):
        db = Database()
        result = db.execute("SELECT 1 AS x UNION ALL SELECT 1")
        assert result.column_values("x") == [1, 1]

    def test_intersect_and_except(self):
        db = Database()
        db.register(Table.from_columns("a", {"x": [1, 2, 3]}))
        db.register(Table.from_columns("b", {"x": [2, 3, 4]}))
        inter = db.execute("SELECT x FROM a INTERSECT SELECT x FROM b")
        assert sorted(inter.column_values("x")) == [2, 3]
        diff = db.execute("SELECT x FROM a EXCEPT SELECT x FROM b")
        assert diff.column_values("x") == [1]

    def test_union_column_count_mismatch_raises(self):
        db = Database()
        with pytest.raises(BindError):
            db.execute("SELECT 1 UNION SELECT 1, 2")

    def test_union_order_by_output(self):
        db = Database()
        result = db.execute("SELECT 2 AS x UNION SELECT 1 ORDER BY x")
        assert result.column_values("x") == [1, 2]


class TestSubqueries:
    def test_subquery_in_from(self, db):
        result = db.execute(
            "SELECT total FROM (SELECT SUM(amount) AS total FROM orders) s"
        )
        assert result.column_values("total") == [110.0]

    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE customer IN (SELECT name FROM customers) "
            "ORDER BY id"
        )
        assert result.column_values("id") == [1, 2, 3]

    def test_scalar_subquery(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE amount = (SELECT MAX(amount) FROM orders)"
        )
        assert result.column_values("id") == [5]

    def test_exists(self, db):
        assert db.query_value("SELECT EXISTS (SELECT 1 FROM orders)") is True

    def test_cte(self, db):
        result = db.execute(
            "WITH german AS (SELECT * FROM orders WHERE country = 'DE') "
            "SELECT COUNT(*) AS n FROM german"
        )
        assert result.column_values("n") == [3]

    def test_cte_shadows_catalog(self, db):
        result = db.execute(
            "WITH orders AS (SELECT 1 AS only_col) SELECT * FROM orders"
        )
        assert result.column_names() == ["only_col"]


class TestThreeValuedLogic:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT NULL AND TRUE", None),
            ("SELECT NULL AND FALSE", False),
            ("SELECT NULL OR TRUE", True),
            ("SELECT NULL OR FALSE", None),
            ("SELECT NOT NULL", None),
            ("SELECT NULL = NULL", None),
            ("SELECT NULL IS NULL", True),
            ("SELECT 1 IN (1, NULL)", True),
            ("SELECT 2 IN (1, NULL)", None),
            ("SELECT 2 NOT IN (1, NULL)", None),
            ("SELECT NULL BETWEEN 1 AND 2", None),
        ],
    )
    def test_truth_table(self, sql, expected):
        assert Database().query_value(sql) == expected


class TestDDLAndDML:
    def test_create_table_as(self, db):
        db.execute("CREATE TABLE german AS SELECT * FROM orders WHERE country = 'DE'")
        assert db.query_value("SELECT COUNT(*) FROM german") == 3

    def test_create_or_replace(self, db):
        db.execute("CREATE TABLE t1 AS SELECT 1 AS x")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t1 AS SELECT 2 AS x")
        db.execute("CREATE OR REPLACE TABLE t1 AS SELECT 2 AS x")
        assert db.query_value("SELECT x FROM t1") == 2

    def test_insert_values(self, db):
        db.execute("CREATE TABLE log (msg VARCHAR, n INTEGER)")
        db.execute("INSERT INTO log VALUES ('a', 1), ('b', 2)")
        assert db.query_value("SELECT COUNT(*) FROM log") == 2

    def test_insert_partial_columns(self, db):
        db.execute("CREATE TABLE log (msg VARCHAR, n INTEGER)")
        db.execute("INSERT INTO log (msg) VALUES ('solo')")
        assert db.execute("SELECT * FROM log").rows == [("solo", None)]

    def test_drop_table(self, db):
        db.execute("CREATE TABLE temp AS SELECT 1 AS x")
        db.execute("DROP TABLE temp")
        assert not db.has_table("temp")
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE temp")
        db.execute("DROP TABLE IF EXISTS temp")


class TestErrors:
    def test_division_by_zero(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT 1 / 0")

    def test_arithmetic_on_text_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT customer + 1 FROM orders")

    def test_aggregate_in_where_raises(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT id FROM orders WHERE SUM(amount) > 10")

    def test_unknown_function_raises(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT frobnicate(id) FROM orders")


class TestDateArithmetic:
    def test_date_comparison_and_diff(self):
        db = Database()
        db.register(
            Table.from_columns(
                "events",
                {
                    "day": [datetime.date(2020, 1, 1), datetime.date(2020, 3, 1)],
                    "label": ["start", "end"],
                },
            )
        )
        assert db.query_value("SELECT MAX(day) - MIN(day) FROM events") == 60
        result = db.execute("SELECT label FROM events WHERE day > DATE('2020-02-01')")
        assert result.column_values("label") == ["end"]

    def test_date_plus_days(self):
        db = Database()
        value = db.query_value("SELECT DATE('2020-01-01') + 31")
        assert value == datetime.date(2020, 2, 1)
