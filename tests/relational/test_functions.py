"""Unit tests for the scalar function library (via SQL evaluation)."""

import datetime

import pytest

from repro.relational import Database
from repro.relational.errors import BindError, ExecutionError


@pytest.fixture
def db():
    return Database()


def val(db, expr):
    return db.query_value(f"SELECT {expr}")


class TestNumericFunctions:
    def test_abs(self, db):
        assert val(db, "ABS(-3)") == 3

    def test_round_half_away_from_zero(self, db):
        assert val(db, "ROUND(2.5)") == 3
        assert val(db, "ROUND(-2.5)") == -3
        assert val(db, "ROUND(2.345, 2)") == 2.35

    def test_floor_ceil(self, db):
        assert val(db, "FLOOR(2.7)") == 2
        assert val(db, "CEIL(2.1)") == 3

    def test_sqrt_negative_raises(self, db):
        with pytest.raises(ExecutionError):
            val(db, "SQRT(-1)")

    def test_power(self, db):
        assert val(db, "POWER(2, 10)") == 1024.0

    def test_sign(self, db):
        assert val(db, "SIGN(-5)") == -1
        assert val(db, "SIGN(0)") == 0

    def test_least_greatest(self, db):
        assert val(db, "LEAST(3, 1, 2)") == 1
        assert val(db, "GREATEST(3, 1, 2)") == 3

    def test_null_propagation(self, db):
        assert val(db, "ABS(NULL)") is None
        assert val(db, "ROUND(NULL, 2)") is None


class TestStringFunctions:
    def test_case_functions(self, db):
        assert val(db, "UPPER('abc')") == "ABC"
        assert val(db, "LOWER('ABC')") == "abc"

    def test_length_trim(self, db):
        assert val(db, "LENGTH('abc')") == 3
        assert val(db, "TRIM('  x  ')") == "x"

    def test_substr_one_based(self, db):
        assert val(db, "SUBSTR('hello', 2, 3)") == "ell"
        assert val(db, "SUBSTR('hello', 1)") == "hello"

    def test_replace(self, db):
        assert val(db, "REPLACE('a-b-c', '-', '+')") == "a+b+c"

    def test_left_right(self, db):
        assert val(db, "LEFT('hello', 2)") == "he"
        assert val(db, "RIGHT('hello', 2)") == "lo"

    def test_strpos(self, db):
        assert val(db, "STRPOS('hello', 'll')") == 3
        assert val(db, "STRPOS('hello', 'z')") == 0

    def test_contains_startswith(self, db):
        assert val(db, "CONTAINS('hello', 'ell')") is True
        assert val(db, "STARTS_WITH('hello', 'he')") is True

    def test_split_part(self, db):
        assert val(db, "SPLIT_PART('a,b,c', ',', 2)") == "b"
        assert val(db, "SPLIT_PART('a,b,c', ',', 9)") == ""

    def test_concat_skips_nulls(self, db):
        assert val(db, "CONCAT('a', NULL, 'b')") == "ab"

    def test_concat_operator_propagates_null(self, db):
        assert val(db, "'a' || NULL") is None

    def test_lpad_rpad(self, db):
        assert val(db, "LPAD('7', 3, '0')") == "007"
        assert val(db, "RPAD('ab', 4, '-')") == "ab--"


class TestConditionalFunctions:
    def test_coalesce(self, db):
        assert val(db, "COALESCE(NULL, NULL, 3)") == 3
        assert val(db, "COALESCE(NULL, NULL)") is None

    def test_nullif(self, db):
        assert val(db, "NULLIF(1, 1)") is None
        assert val(db, "NULLIF(1, 2)") == 1

    def test_if(self, db):
        assert val(db, "IF(TRUE, 'yes', 'no')") == "yes"

    def test_typeof(self, db):
        assert val(db, "TYPEOF(1)") == "INTEGER"
        assert val(db, "TYPEOF('x')") == "TEXT"
        assert val(db, "TYPEOF(NULL)") == "NULL"


class TestDateFunctions:
    def test_date_parts(self, db):
        assert val(db, "YEAR(DATE('2021-03-04'))") == 2021
        assert val(db, "MONTH(DATE('2021-03-04'))") == 3
        assert val(db, "DAY(DATE('2021-03-04'))") == 4

    def test_date_diff(self, db):
        assert val(db, "DATE_DIFF('day', DATE('2021-01-01'), DATE('2021-01-31'))") == 30
        assert val(db, "DATE_DIFF('month', DATE('2021-01-15'), DATE('2021-03-01'))") == 2

    def test_date_add(self, db):
        assert val(db, "DATE_ADD(DATE('2021-01-01'), 31)") == datetime.date(2021, 2, 1)

    def test_strftime(self, db):
        assert val(db, "STRFTIME(DATE('2021-03-04'), '%Y/%m')") == "2021/03"

    def test_make_date(self, db):
        assert val(db, "MAKE_DATE(2021, 2, 28)") == datetime.date(2021, 2, 28)
        with pytest.raises(ExecutionError):
            val(db, "MAKE_DATE(2021, 2, 30)")

    def test_date_from_textual_format(self, db):
        assert val(db, "DATE('March 4, 2021')") == datetime.date(2021, 3, 4)


class TestArity:
    def test_wrong_arity_raises(self, db):
        with pytest.raises(BindError):
            val(db, "ABS(1, 2)")
        with pytest.raises(BindError):
            val(db, "SUBSTR('x')")
