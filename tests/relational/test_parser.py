"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.relational import ast
from repro.relational.errors import LexError, ParseError
from repro.relational.lexer import tokenize
from repro.relational.parser import parse, parse_script
from repro.relational.sql_render import select_to_sql


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"My Column"')
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "My Column"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5E-2")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "1e3", "2.5E-2"]

    def test_line_comment(self):
        tokens = tokenize("SELECT -- comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_block_comment(self):
        tokens = tokenize("SELECT /* multi\nline */ 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT @")


class TestParserSelect:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_clause, ast.TableRef)

    def test_star_and_qualified_star(self):
        stmt = parse("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.table == "t"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_clause.alias == "u"

    def test_where_precedence(self):
        stmt = parse("SELECT 1 FROM t WHERE a OR b AND c")
        assert isinstance(stmt.where, ast.Binary)
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_group_by_having(self):
        stmt = parse("SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 1")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_variants(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC NULLS FIRST, b ASC")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[0].nulls_last is False
        assert stmt.order_by[1].ascending is True

    def test_limit_offset(self):
        stmt = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_joins(self):
        stmt = parse(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c USING (y) CROSS JOIN d"
        )
        join = stmt.from_clause
        assert isinstance(join, ast.Join)
        assert join.join_type == "CROSS"
        assert join.left.join_type == "LEFT"
        assert join.left.using == ["y"]
        assert join.left.left.join_type == "INNER"

    def test_comma_join_is_cross(self):
        stmt = parse("SELECT 1 FROM a, b")
        assert stmt.from_clause.join_type == "CROSS"

    def test_subquery_in_from(self):
        stmt = parse("SELECT x FROM (SELECT 1 AS x) sub")
        assert isinstance(stmt.from_clause, ast.SubqueryRef)
        assert stmt.from_clause.alias == "sub"

    def test_union(self):
        stmt = parse("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
        assert [s.op for s in stmt.set_ops] == ["UNION", "UNION"]
        assert stmt.set_ops[0].all is True
        assert stmt.set_ops[1].all is False

    def test_cte(self):
        stmt = parse("WITH c AS (SELECT 1 AS x), d AS (SELECT 2) SELECT * FROM c")
        assert [name for name, _ in stmt.ctes] == ["c", "d"]

    def test_missing_on_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM a JOIN b")

    def test_case_expression(self):
        stmt = parse("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.Case)
        assert expr.else_ is not None

    def test_simple_case(self):
        stmt = parse("SELECT CASE a WHEN 1 THEN 'one' END FROM t")
        assert stmt.items[0].expr.operand is not None

    def test_cast(self):
        expr = parse("SELECT CAST(a AS INTEGER)").items[0].expr
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "INTEGER"

    def test_in_list_and_subquery(self):
        expr = parse("SELECT a IN (1, 2) FROM t").items[0].expr
        assert isinstance(expr, ast.InList)
        expr = parse("SELECT a NOT IN (SELECT b FROM u) FROM t").items[0].expr
        assert isinstance(expr, ast.InSubquery)
        assert expr.negated

    def test_between_like(self):
        expr = parse("SELECT a BETWEEN 1 AND 2 FROM t").items[0].expr
        assert isinstance(expr, ast.Between)
        expr = parse("SELECT a NOT LIKE '%x%' FROM t").items[0].expr
        assert isinstance(expr, ast.Like)
        assert expr.negated

    def test_is_null(self):
        expr = parse("SELECT a IS NOT NULL FROM t").items[0].expr
        assert isinstance(expr, ast.IsNull)
        assert expr.negated

    def test_count_star_and_distinct(self):
        expr = parse("SELECT COUNT(*) FROM t").items[0].expr
        assert expr.is_star
        expr = parse("SELECT COUNT(DISTINCT a) FROM t").items[0].expr
        assert expr.distinct

    def test_exists(self):
        expr = parse("SELECT EXISTS (SELECT 1)").items[0].expr
        assert isinstance(expr, ast.Exists)

    def test_scalar_subquery(self):
        expr = parse("SELECT (SELECT MAX(x) FROM t)").items[0].expr
        assert isinstance(expr, ast.ScalarSubquery)

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT FROM WHERE")
        with pytest.raises(ParseError):
            parse("FROBNICATE 1")


class TestParserStatements:
    def test_create_table_as(self):
        stmt = parse("CREATE TABLE t2 AS SELECT * FROM t")
        assert isinstance(stmt, ast.CreateTableAs)
        assert stmt.name == "t2"

    def test_create_or_replace(self):
        stmt = parse("CREATE OR REPLACE TABLE t AS SELECT 1")
        assert stmt.or_replace

    def test_create_table_columns(self):
        stmt = parse("CREATE TABLE t (a INTEGER, b VARCHAR)")
        assert [c.name for c in stmt.columns] == ["a", "b"]

    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.InsertValues)
        assert len(stmt.rows) == 2

    def test_drop(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.if_exists

    def test_script(self):
        stmts = parse_script("SELECT 1; SELECT 2;")
        assert len(stmts) == 2

    def test_parse_rejects_multi(self):
        with pytest.raises(ParseError):
            parse("SELECT 1; SELECT 2")


class TestRoundTrip:
    """select_to_sql(parse(sql)) must itself re-parse to the same rendering."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, b + 1 AS c FROM t WHERE a > 2 ORDER BY c DESC LIMIT 3",
            "SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 1",
            "SELECT * FROM a LEFT JOIN b ON a.x = b.y WHERE b.y IS NULL",
            "WITH c AS (SELECT 1 AS x) SELECT x FROM c UNION ALL SELECT 2",
            "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
            "SELECT DISTINCT a FROM t WHERE a IN (1, 2, 3)",
            "SELECT CAST(a AS DOUBLE) FROM t WHERE a BETWEEN 1 AND 9",
        ],
    )
    def test_stable_rendering(self, sql):
        first = select_to_sql(parse(sql))
        second = select_to_sql(parse(first))
        assert first == second
