"""The catalog-versioned plan cache: keys, counters, invalidation, LRU."""

import threading

import pytest

from repro.relational import Database, PlanCache, Table, normalize_sql
from repro.relational.errors import CatalogError


@pytest.fixture
def db():
    database = Database()
    database.register(Table.from_columns("t", {"g": ["a", "b", "a"], "x": [1, 2, 3]}))
    return database


class TestNormalizeSql:
    def test_collapses_whitespace(self):
        assert (
            normalize_sql("SELECT  x\n FROM\tt\n  WHERE x > 1")
            == "SELECT x FROM t WHERE x > 1"
        )

    def test_strips_leading_and_trailing(self):
        assert normalize_sql("  SELECT 1  ") == "SELECT 1"

    def test_preserves_string_literals(self):
        # Whitespace inside quotes is significant: 'a  b' != 'a b'.
        a = normalize_sql("SELECT 'a  b'")
        b = normalize_sql("SELECT 'a b'")
        assert a != b
        assert "'a  b'" in a

    def test_preserves_quoted_identifiers_and_escapes(self):
        sql = 'SELECT  "Mixed  Case", \'it\'\'s  here\' FROM t'
        normalized = normalize_sql(sql)
        assert '"Mixed  Case"' in normalized
        assert "'it''s  here'" in normalized


class TestPlanCacheCounters:
    def test_repeated_query_hits(self, db):
        db.execute("SELECT SUM(x) FROM t")
        db.execute("SELECT SUM(x) FROM t")
        db.execute("SELECT  SUM(x)  FROM  t")  # whitespace variant shares the slot
        stats = db.plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1

    def test_warm_hit_returns_same_result(self, db):
        first = db.execute("SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY g")
        second = db.execute("SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY g")
        assert first.rows == second.rows
        assert first.schema == second.schema
        assert db.plan_cache_stats()["hits"] == 1

    def test_ddl_is_not_cached(self, db):
        db.execute("CREATE TABLE other (y INT)")
        stats = db.plan_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["size"] == 0


class TestCatalogVersioning:
    def test_version_bumps_on_register_insert_drop(self, db):
        v0 = db.version
        db.register(Table.from_columns("u", {"y": [1]}))
        assert db.version == v0 + 1
        db.execute("INSERT INTO u VALUES (2)")
        assert db.version == v0 + 2
        db.execute("DROP TABLE u")
        assert db.version == v0 + 3

    def test_drop_if_exists_missing_does_not_bump(self, db):
        v0 = db.version
        db.execute("DROP TABLE IF EXISTS never_there")
        assert db.version == v0

    def test_failed_put_does_not_bump(self, db):
        v0 = db.version
        with pytest.raises(CatalogError):
            db.put_table(Table.from_columns("t", {"x": [1]}), replace=False)
        assert db.version == v0

    def test_insert_invalidates_cached_plan(self, db):
        sql = "SELECT SUM(x) FROM t"
        assert db.execute(sql).single_value() == 6
        db.execute("INSERT INTO t VALUES ('c', 10)")
        # New catalog version: the stale plan must not be served.
        assert db.execute(sql).single_value() == 16
        stats = db.plan_cache_stats()
        assert stats["misses"] == 2  # one per catalog version
        assert stats["hits"] == 0

    def test_create_table_as_sees_fresh_data(self, db):
        db.execute("CREATE TABLE derived AS SELECT g, x FROM t WHERE x > 1")
        assert db.execute("SELECT COUNT(*) FROM derived").single_value() == 2
        db.execute("INSERT INTO derived VALUES ('z', 99)")
        assert db.execute("SELECT COUNT(*) FROM derived").single_value() == 3


class TestLRU:
    def test_capacity_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put(("a", 0), "plan-a")
        cache.put(("b", 0), "plan-b")
        assert cache.get(("a", 0)) == "plan-a"  # refresh 'a'
        cache.put(("c", 0), "plan-c")  # evicts 'b' (least recently used)
        assert cache.get(("b", 0)) is None
        assert cache.get(("a", 0)) == "plan-a"
        assert cache.get(("c", 0)) == "plan-c"
        assert cache.stats()["evictions"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_database_capacity_plumbs_through(self):
        database = Database(plan_cache_capacity=1)
        database.register(Table.from_columns("t", {"x": [1]}))
        database.execute("SELECT x FROM t")
        database.execute("SELECT x + 1 FROM t")
        stats = database.plan_cache_stats()
        assert stats["size"] == 1
        assert stats["evictions"] == 1


class TestConcurrency:
    def test_concurrent_sessions_share_the_cache(self, db):
        sql = "SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY g"
        expected = db.execute(sql).rows
        errors = []

        def worker():
            try:
                for _ in range(20):
                    assert db.execute(sql).rows == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = db.plan_cache_stats()
        assert stats["misses"] >= 1
        assert stats["hits"] + stats["misses"] == 8 * 20 + 1


class TestSharedCacheNamespacing:
    def test_two_databases_sharing_one_cache_never_collide(self):
        """Same table name, same SQL text, same version — different data.

        A service hands every session's scratch database one shared
        cache; per-catalog namespacing must keep their plans apart.
        """
        shared = PlanCache(capacity=16)
        db_a = Database("a", plan_cache=shared)
        db_b = Database("b", plan_cache=shared)
        db_a.register(Table.from_columns("t", {"x": [1, 2]}))
        db_b.register(Table.from_columns("t", {"x": [10, 20]}))
        assert db_a.version == db_b.version  # identical (ns, sql, version) without ns
        sql = "SELECT SUM(x) FROM t"
        assert db_a.execute(sql).single_value() == 3
        assert db_b.execute(sql).single_value() == 30
        # Warm repeats stay correct and are served from the shared cache.
        assert db_a.execute(sql).single_value() == 3
        assert db_b.execute(sql).single_value() == 30
        stats = shared.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 2
        assert stats["size"] == 2

    def test_share_plan_cache_adopts_external_cache(self):
        shared = PlanCache(capacity=4)
        database = Database()
        database.register(Table.from_columns("t", {"x": [1]}))
        database.share_plan_cache(shared)
        database.execute("SELECT x FROM t")
        assert shared.stats()["misses"] == 1
        assert database.plan_cache_stats() == shared.stats()
