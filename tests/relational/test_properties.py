"""Property-based tests for relational-engine invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational import Database, Table

# Small value domains keep example tables interpretable while still hitting
# NULLs, duplicates, and negative numbers.
values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
columns = st.lists(values, min_size=0, max_size=12)


def make_db(xs, ys=None):
    db = Database()
    data = {"x": xs}
    if ys is not None:
        data["y"] = ys[: len(xs)] + [None] * max(0, len(xs) - len(ys))
    db.register(Table.from_columns("t", data))
    return db


@given(columns)
def test_filter_partition(xs):
    """WHERE p, WHERE NOT p, and WHERE p IS NULL partition the rows."""
    db = make_db(xs)
    n = db.query_value("SELECT COUNT(*) FROM t")
    true_n = db.query_value("SELECT COUNT(*) FROM t WHERE x > 0")
    false_n = db.query_value("SELECT COUNT(*) FROM t WHERE NOT (x > 0)")
    null_n = db.query_value("SELECT COUNT(*) FROM t WHERE x IS NULL")
    assert true_n + false_n + null_n == n


@given(columns)
def test_sum_equals_python_sum(xs):
    db = make_db(xs)
    expected = sum(v for v in xs if v is not None) if any(v is not None for v in xs) else None
    assert db.query_value("SELECT SUM(x) FROM t") == expected


@given(columns)
def test_distinct_union_self_is_identity(xs):
    db = make_db(xs)
    base = db.execute("SELECT DISTINCT x FROM t ORDER BY x")
    union = db.execute("SELECT x FROM t UNION SELECT x FROM t ORDER BY x")
    assert base.rows == union.rows


@given(columns)
def test_order_by_is_sorted_with_nulls_last(xs):
    db = make_db(xs)
    result = db.execute("SELECT x FROM t ORDER BY x").column_values("x")
    non_null = [v for v in result if v is not None]
    assert non_null == sorted(non_null)
    if None in result:
        first_null = result.index(None)
        assert all(v is None for v in result[first_null:])


@given(columns)
def test_limit_is_prefix(xs):
    db = make_db(xs)
    full = db.execute("SELECT x FROM t ORDER BY x").column_values("x")
    limited = db.execute("SELECT x FROM t ORDER BY x LIMIT 3").column_values("x")
    assert limited == full[:3]


@given(columns, columns)
def test_join_commutativity_on_counts(xs, ys):
    """Inner equi-join cardinality is symmetric."""
    db = Database()
    db.register(Table.from_columns("a", {"x": xs}))
    db.register(Table.from_columns("b", {"y": ys}))
    ab = db.query_value("SELECT COUNT(*) FROM a JOIN b ON a.x = b.y")
    ba = db.query_value("SELECT COUNT(*) FROM b JOIN a ON b.y = a.x")
    assert ab == ba


@given(columns)
def test_left_join_preserves_left_rows(xs):
    """A LEFT JOIN on a unique right side never loses left rows."""
    db = Database()
    db.register(Table.from_columns("a", {"x": xs}))
    db.register(Table.from_columns("b", {"y": sorted({v for v in xs if v is not None})}))
    n = db.query_value("SELECT COUNT(*) FROM a")
    joined = db.query_value("SELECT COUNT(*) FROM a LEFT JOIN b ON a.x = b.y")
    assert joined == n


@given(columns)
def test_group_by_counts_sum_to_total(xs):
    db = make_db(xs)
    result = db.execute("SELECT x, COUNT(*) AS n FROM t GROUP BY x")
    assert sum(result.column_values("n")) == len(xs)


@given(columns)
def test_having_subset_of_groups(xs):
    db = make_db(xs)
    all_groups = db.execute("SELECT x FROM t GROUP BY x").num_rows
    filtered = db.execute("SELECT x FROM t GROUP BY x HAVING COUNT(*) > 1").num_rows
    assert filtered <= all_groups


@given(columns)
def test_where_pushdown_through_subquery(xs):
    """Filtering outside a subquery equals filtering inside it."""
    db = make_db(xs)
    outer = db.execute("SELECT x FROM (SELECT x FROM t) s WHERE x > 0 ORDER BY x")
    inner = db.execute("SELECT x FROM (SELECT x FROM t WHERE x > 0) s ORDER BY x")
    assert outer.rows == inner.rows


@given(columns)
def test_except_intersect_partition(xs):
    """EXCEPT and INTERSECT partition DISTINCT rows of the left side."""
    db = Database()
    half = xs[: len(xs) // 2]
    db.register(Table.from_columns("a", {"x": xs}))
    db.register(Table.from_columns("b", {"x": half}))
    distinct = db.execute("SELECT DISTINCT x FROM a").num_rows
    minus = db.execute("SELECT x FROM a EXCEPT SELECT x FROM b").num_rows
    common = db.execute("SELECT x FROM a INTERSECT SELECT x FROM b").num_rows
    assert minus + common == distinct


@given(st.lists(st.integers(min_value=-3, max_value=3), min_size=1, max_size=10))
def test_avg_between_min_and_max(xs):
    db = make_db(xs)
    avg = db.query_value("SELECT AVG(x) FROM t")
    lo = db.query_value("SELECT MIN(x) FROM t")
    hi = db.query_value("SELECT MAX(x) FROM t")
    assert lo <= avg <= hi


@given(st.text(alphabet="ab_%", max_size=6), st.text(alphabet="ab", max_size=6))
def test_like_matches_python_semantics(pattern, text):
    """LIKE agrees with a reference implementation of %/_ wildcards."""
    import re

    db = Database()
    db.register(Table.from_columns("t", {"s": [text]}))
    regex = "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
    expected = bool(re.match(regex, text, re.DOTALL))
    escaped = pattern.replace("'", "''")
    got = db.query_value(f"SELECT s LIKE '{escaped}' FROM t")
    assert got == expected
