"""Tests that rendered SQL is faithful: re-parsing and re-executing the
rendering of a query produces the same result table."""

import pytest

from repro.relational import Database, Table, parse, select_to_sql


@pytest.fixture
def db():
    database = Database()
    database.register(
        Table.from_columns(
            "t",
            {
                "g": ["a", "a", "b", None],
                "x": [1, 2, 3, 4],
                "y": [10.0, None, 30.0, 40.0],
            },
        )
    )
    database.register(Table.from_columns("u", {"g": ["a", "b"], "label": ["A", "B"]}))
    return database


QUERIES = [
    "SELECT * FROM t",
    "SELECT g, SUM(x) AS total FROM t GROUP BY g HAVING SUM(x) > 1 ORDER BY g",
    "SELECT t.x, u.label FROM t JOIN u ON t.g = u.g WHERE t.x < 3",
    "SELECT DISTINCT g FROM t WHERE x BETWEEN 1 AND 3 ORDER BY g",
    "SELECT CASE WHEN x % 2 = 0 THEN 'even' ELSE 'odd' END AS parity FROM t ORDER BY x",
    "SELECT x FROM t WHERE g IS NOT NULL AND y IS NOT NULL ORDER BY x DESC LIMIT 2",
    "SELECT x FROM t WHERE g IN ('a', 'b') ORDER BY 1",
    "WITH c AS (SELECT x FROM t WHERE x > 1) SELECT COUNT(*) FROM c",
    "SELECT x FROM t WHERE x > (SELECT AVG(x) FROM t) ORDER BY x",
    "SELECT COALESCE(y, 0.0) AS y0 FROM t ORDER BY y0",
    "SELECT g FROM t WHERE g LIKE 'a%'",
    "SELECT x FROM t UNION ALL SELECT x FROM t ORDER BY x LIMIT 3",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_rendered_sql_executes_identically(db, sql):
    original = db.execute(sql)
    rendered = select_to_sql(parse(sql))
    again = db.execute(rendered)
    assert again.rows == original.rows
    assert again.column_names() == original.column_names()
