"""Unit tests for value types, coercion, and three-valued comparison."""

import datetime

import pytest

from repro.relational.errors import ExecutionError
from repro.relational.types import (
    DataType,
    cast_value,
    common_type,
    compare_values,
    format_value,
    infer_column_type,
    parse_date,
    parse_type_name,
    sort_key,
    type_of_value,
)


class TestTypeOfValue:
    def test_null(self):
        assert type_of_value(None) == DataType.NULL

    def test_bool_is_not_integer(self):
        assert type_of_value(True) == DataType.BOOLEAN

    def test_int(self):
        assert type_of_value(42) == DataType.INTEGER

    def test_float(self):
        assert type_of_value(3.14) == DataType.DOUBLE

    def test_text(self):
        assert type_of_value("hi") == DataType.TEXT

    def test_date(self):
        assert type_of_value(datetime.date(2020, 1, 1)) == DataType.DATE

    def test_unsupported_raises(self):
        with pytest.raises(ExecutionError):
            type_of_value([1, 2])


class TestCommonType:
    def test_null_absorbed(self):
        assert common_type(DataType.NULL, DataType.INTEGER) == DataType.INTEGER
        assert common_type(DataType.TEXT, DataType.NULL) == DataType.TEXT

    def test_numeric_widening(self):
        assert common_type(DataType.INTEGER, DataType.DOUBLE) == DataType.DOUBLE

    def test_heterogeneous_degrades_to_text(self):
        assert common_type(DataType.INTEGER, DataType.TEXT) == DataType.TEXT
        assert common_type(DataType.DATE, DataType.BOOLEAN) == DataType.TEXT

    def test_infer_column(self):
        assert infer_column_type([None, 1, 2.0]) == DataType.DOUBLE
        assert infer_column_type([]) == DataType.NULL
        assert infer_column_type(["a", 1]) == DataType.TEXT


class TestCast:
    def test_null_casts_to_null(self):
        assert cast_value(None, DataType.INTEGER) is None

    def test_string_to_int(self):
        assert cast_value("42", DataType.INTEGER) == 42
        assert cast_value("42.9", DataType.INTEGER) == 42

    def test_float_to_int_truncates(self):
        assert cast_value(3.99, DataType.INTEGER) == 3

    def test_to_double(self):
        assert cast_value("2.5", DataType.DOUBLE) == 2.5
        assert cast_value(2, DataType.DOUBLE) == 2.0

    def test_to_text(self):
        assert cast_value(3.0, DataType.TEXT) == "3.0"
        assert cast_value(True, DataType.TEXT) == "true"

    def test_to_boolean(self):
        assert cast_value("true", DataType.BOOLEAN) is True
        assert cast_value(0, DataType.BOOLEAN) is False

    def test_to_date(self):
        assert cast_value("2021-03-04", DataType.DATE) == datetime.date(2021, 3, 4)

    def test_bad_cast_raises(self):
        with pytest.raises(ExecutionError):
            cast_value("not a number", DataType.INTEGER)
        with pytest.raises(ExecutionError):
            cast_value(float("nan"), DataType.INTEGER)


class TestParseDate:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2020-05-06", datetime.date(2020, 5, 6)),
            ("2020/05/06", datetime.date(2020, 5, 6)),
            ("05/06/2020", datetime.date(2020, 5, 6)),
            ("May 6, 2020", datetime.date(2020, 5, 6)),
            ("May 06, 2020", datetime.date(2020, 5, 6)),
        ],
    )
    def test_formats(self, text, expected):
        assert parse_date(text) == expected

    def test_unparseable_raises(self):
        with pytest.raises(ExecutionError):
            parse_date("sixth of may")


class TestCompareValues:
    def test_null_yields_none(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None

    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(2, 1.5) == 1

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_dates(self):
        assert compare_values(datetime.date(2020, 1, 1), datetime.date(2021, 1, 1)) == -1


class TestSortKey:
    def test_nulls_sort_last(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key) == [1, 3, None]

    def test_mixed_types_are_totally_ordered(self):
        values = ["b", 2, None, 1.5, "a", datetime.date(2020, 1, 1)]
        ordered = sorted(values, key=sort_key)
        assert ordered.index(None) == len(values) - 1


class TestParseTypeName:
    def test_aliases(self):
        assert parse_type_name("VARCHAR") == DataType.TEXT
        assert parse_type_name("varchar(255)") == DataType.TEXT
        assert parse_type_name("BIGINT") == DataType.INTEGER

    def test_unknown_raises(self):
        with pytest.raises(ExecutionError):
            parse_type_name("BLOB")


class TestFormatValue:
    def test_whole_floats_keep_decimal(self):
        assert format_value(2.0) == "2.0"

    def test_null(self):
        assert format_value(None) == "NULL"

    def test_date_iso(self):
        assert format_value(datetime.date(2020, 1, 2)) == "2020-01-02"
