"""The planned/vectorized engine must agree with the row engine exactly.

``RowExecutor`` is the semantic oracle: every query here runs on both
engines and the results (rows, column names, inferred types) must match.
A second battery checks behaviors that vectorization could plausibly
break: masked CASE branches, lazy subquery binding, and late-materialized
join columns.
"""

import datetime

import pytest

from repro.relational import Database, RowExecutor, Table
from repro.relational.errors import BindError, ExecutionError
from repro.relational.parser import parse


@pytest.fixture
def db():
    database = Database()
    database.register(
        Table.from_columns(
            "orders",
            {
                "id": [1, 2, 3, 4, 5, 6],
                "customer": ["ann", "bob", "ann", None, "cid", "bob"],
                "amount": [10.0, 20.0, None, 40.0, 50.0, 5.0],
                "qty": [1, 2, 3, 4, None, 6],
                "day": [
                    datetime.date(2024, 1, 1),
                    datetime.date(2024, 1, 2),
                    datetime.date(2024, 2, 1),
                    datetime.date(2024, 2, 2),
                    None,
                    datetime.date(2024, 3, 1),
                ],
            },
        )
    )
    database.register(
        Table.from_columns(
            "customers",
            {"name": ["ann", "bob", "dee"], "tier": ["gold", "silver", "gold"]},
        )
    )
    return database


EQUIVALENCE_QUERIES = [
    "SELECT * FROM orders",
    "SELECT id, amount * 2 AS double_amount FROM orders WHERE amount IS NOT NULL",
    "SELECT id FROM orders WHERE amount > 15 AND qty < 5",
    "SELECT id FROM orders WHERE customer IN ('ann', 'cid') OR qty >= 6",
    "SELECT id FROM orders WHERE amount BETWEEN 10 AND 40",
    "SELECT id FROM orders WHERE customer LIKE 'a%'",
    "SELECT id FROM orders WHERE customer NOT LIKE '%b'",
    "SELECT DISTINCT customer FROM orders",
    "SELECT id, CASE WHEN amount > 25 THEN 'big' WHEN amount > 10 THEN 'mid' "
    "ELSE 'small' END AS bucket FROM orders",
    "SELECT id, CAST(qty AS DOUBLE) AS qd, UPPER(customer) AS cu FROM orders",
    "SELECT customer, COUNT(*) AS n, SUM(amount) AS total FROM orders "
    "GROUP BY customer ORDER BY customer NULLS LAST",
    "SELECT customer, COUNT(DISTINCT qty) AS dq FROM orders GROUP BY customer",
    "SELECT customer, SUM(amount) AS s FROM orders GROUP BY customer "
    "HAVING SUM(amount) > 15 ORDER BY s DESC",
    "SELECT COUNT(*), SUM(amount), MIN(day), MAX(day), AVG(qty) FROM orders",
    "SELECT o.id, c.tier FROM orders o JOIN customers c ON o.customer = c.name "
    "ORDER BY o.id",
    "SELECT o.id, c.tier FROM orders o LEFT JOIN customers c ON o.customer = c.name "
    "ORDER BY o.id",
    "SELECT c.name, o.id FROM orders o RIGHT JOIN customers c ON o.customer = c.name "
    "ORDER BY c.name, o.id NULLS LAST",
    "SELECT o.id, c.name FROM orders o FULL JOIN customers c ON o.customer = c.name "
    "ORDER BY o.id NULLS LAST, c.name NULLS LAST",
    "SELECT orders.id, customers.name FROM orders CROSS JOIN customers "
    "ORDER BY orders.id, customers.name LIMIT 7",
    "SELECT o.id FROM orders o JOIN customers c "
    "ON o.customer = c.name AND o.amount > 15",
    "SELECT id FROM orders WHERE customer IN (SELECT name FROM customers)",
    "SELECT id FROM orders WHERE EXISTS (SELECT 1 FROM customers WHERE tier = 'gold')",
    "SELECT id, (SELECT COUNT(*) FROM customers) AS nc FROM orders LIMIT 2",
    "WITH big AS (SELECT * FROM orders WHERE amount >= 20) "
    "SELECT customer, COUNT(*) FROM big GROUP BY customer ORDER BY 1 NULLS LAST",
    "SELECT customer FROM orders UNION SELECT name FROM customers ORDER BY 1 NULLS LAST",
    "SELECT customer FROM orders INTERSECT SELECT name FROM customers",
    "SELECT name FROM customers EXCEPT SELECT customer FROM orders",
    "SELECT t.total FROM (SELECT customer, SUM(amount) AS total FROM orders "
    "GROUP BY customer) t ORDER BY t.total NULLS LAST",
    "SELECT id FROM orders ORDER BY amount DESC NULLS LAST, id LIMIT 3",
    "SELECT id, qty FROM orders ORDER BY qty * -1 NULLS LAST",
    "SELECT id FROM orders ORDER BY 1 DESC OFFSET 2",
    "SELECT day + 30 AS later FROM orders WHERE day IS NOT NULL ORDER BY later",
]


@pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
def test_engines_agree(db, sql):
    stmt = parse(sql)
    baseline = RowExecutor(db).execute_statement(stmt)
    result = db.execute(sql)
    assert result.rows == baseline.rows, sql
    assert result.column_names() == baseline.column_names(), sql
    assert result.schema == baseline.schema, sql


class TestMaskedCase:
    """CASE branches only evaluate for rows that reach them."""

    def test_guarded_division(self):
        database = Database()
        database.register(Table.from_columns("t", {"x": [0, 2, 0, 4]}))
        result = database.execute(
            "SELECT CASE WHEN x = 0 THEN 0 ELSE 10 / x END AS r FROM t"
        )
        assert [r[0] for r in result.rows] == [0, 5.0, 0, 2.5]

    def test_guarded_division_in_else_chain(self):
        database = Database()
        database.register(Table.from_columns("t", {"x": [1, 0, 3]}))
        result = database.execute(
            "SELECT CASE WHEN x > 2 THEN 1 WHEN x = 0 THEN -1 ELSE 1 / x END AS r FROM t"
        )
        assert [r[0] for r in result.rows] == [1.0, -1, 1]

    def test_unguarded_division_still_raises(self):
        database = Database()
        database.register(Table.from_columns("t", {"x": [0, 2]}))
        with pytest.raises(ExecutionError):
            database.execute("SELECT 10 / x FROM t")


class TestLazySubqueries:
    """Subqueries bind lazily: never-evaluated predicates never bind."""

    def test_subquery_over_empty_outer_is_not_bound(self):
        database = Database()
        database.register(Table.from_columns("empty", {"x": []}))
        database.register(Table.from_columns("u", {"y": [1]}))
        # The row engine never binds the subquery because the predicate
        # never runs on any row; the planned engine must match.
        result = database.execute(
            "SELECT x FROM empty WHERE x IN (SELECT missing_col FROM u)"
        )
        assert result.num_rows == 0

    def test_subquery_binding_error_surfaces_when_rows_exist(self):
        database = Database()
        database.register(Table.from_columns("t", {"x": [1]}))
        database.register(Table.from_columns("u", {"y": [1]}))
        with pytest.raises(BindError):
            database.execute("SELECT x FROM t WHERE x IN (SELECT missing_col FROM u)")


class TestJoinShapes:
    def test_using_drops_duplicate_column(self, db):
        db.register(Table.from_columns("k1", {"k": [1, 2], "a": ["x", "y"]}))
        db.register(Table.from_columns("k2", {"k": [2, 3], "b": ["p", "q"]}))
        result = db.execute("SELECT * FROM k1 JOIN k2 USING (k)")
        assert result.column_names() == ["k", "a", "b"]
        assert result.rows == [(2, "y", "p")]

    def test_non_equi_join(self, db):
        db.register(Table.from_columns("lo", {"v": [1, 5]}))
        db.register(Table.from_columns("hi", {"w": [3, 6]}))
        result = db.execute("SELECT v, w FROM lo JOIN hi ON v < w ORDER BY v, w")
        assert result.rows == [(1, 3), (1, 6), (5, 6)]

    def test_null_keys_never_match_but_left_rows_survive(self, db):
        result = db.execute(
            "SELECT o.id, c.name FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.name WHERE o.customer IS NULL"
        )
        assert result.rows == [(4, None)]


class TestExecutorFacadeApi:
    """The Executor facade keeps the legacy execute_select(env) surface."""

    def test_execute_select_with_env_tables(self, db):
        from repro.relational.executor import Executor

        env = {"bound": Table.from_columns("bound", {"z": [7, 8]})}
        select = parse("SELECT SUM(z) FROM bound")
        result = Executor(db).execute_select(select, env)
        assert result.single_value() == 15

    def test_execute_statement_matches_database_execute(self, db):
        from repro.relational.executor import Executor

        stmt = parse("SELECT COUNT(*) FROM orders")
        assert Executor(db).execute_statement(stmt).single_value() == 6
