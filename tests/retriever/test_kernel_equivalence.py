"""Ranking-equivalence battery: the array-native retrieval kernel must
reproduce the legacy kernel's rankings identically (scores within 1e-9)
across corpus sizes, seeds, metrics, and fusion modes.

The legacy classes are the semantic oracles the PR-2-style kernel swap is
held to — same contract as ``RowExecutor`` for the SQL engine.
"""

import random

import numpy as np
import pytest

from repro.ann import HNSWIndex, LegacyHNSWIndex
from repro.retriever import HybridIndex
from repro.text import BM25Index, LegacyBM25Index

TOL = 1e-9


def corpus(n_docs: int, vocab_size: int, seed: int):
    """Zipf-ish synthetic docs over a stem-stable vocabulary."""
    rng = random.Random(seed)
    vocab = [f"t{i}x" for i in range(vocab_size)]
    weights = [1.0 / (i + 1) ** 0.7 for i in range(vocab_size)]
    return [
        (f"doc{i}", " ".join(rng.choices(vocab, weights=weights, k=rng.randint(4, 12))))
        for i in range(n_docs)
    ]


def queries_for(docs, n: int, seed: int):
    rng = random.Random(seed + 777)
    out = []
    for _ in range(n):
        _, text = docs[rng.randrange(len(docs))]
        words = text.split()
        out.append(" ".join(rng.sample(words, min(len(words), rng.randint(1, 4)))))
    out += ["", "nomatchzzz", "t0x"]
    return out


def assert_hits_equal(legacy_hits, kernel_hits, context: str):
    assert [h.doc_id for h in legacy_hits] == [h.doc_id for h in kernel_hits], context
    for lhit, khit in zip(legacy_hits, kernel_hits):
        assert abs(lhit.score - khit.score) <= TOL * max(1.0, abs(lhit.score)), (
            context,
            lhit,
            khit,
        )


class TestBM25Equivalence:
    @pytest.mark.parametrize("n_docs,vocab,seed", [(60, 40, 0), (400, 120, 1), (1500, 300, 2)])
    def test_rankings_match_on_both_paths(self, n_docs, vocab, seed):
        docs = corpus(n_docs, vocab, seed)
        qs = queries_for(docs, 25, seed)
        legacy = LegacyBM25Index()
        legacy.add_batch(docs)
        kernel = BM25Index()
        kernel.add_batch(docs)
        # Lazy (uncompiled) kernel path.
        for query in qs:
            assert_hits_equal(
                legacy.search(query, k=10), kernel.search(query, k=10), f"lazy:{query!r}"
            )
        # Compiled path (impact-sorted postings + max-score early exit).
        kernel.compile()
        assert kernel.compiled
        for query in qs:
            assert_hits_equal(
                legacy.search(query, k=10),
                kernel.search(query, k=10),
                f"compiled:{query!r}",
            )

    def test_search_batch_and_k_sweep(self):
        docs = corpus(500, 150, 5)
        qs = queries_for(docs, 15, 5)
        legacy = LegacyBM25Index()
        legacy.add_batch(docs)
        kernel = BM25Index()
        kernel.add_batch(docs)
        kernel.compile()
        for k in (1, 3, 10, 50, 1000):
            for legacy_hits, kernel_hits in zip(
                legacy.search_batch(qs, k=k), kernel.search_batch(qs, k=k)
            ):
                assert_hits_equal(legacy_hits, kernel_hits, f"k={k}")

    def test_score_method_matches(self):
        docs = corpus(200, 60, 7)
        legacy = LegacyBM25Index()
        legacy.add_batch(docs)
        kernel = BM25Index()
        kernel.add_batch(docs)
        for query in queries_for(docs, 10, 7):
            for doc_id in ("doc0", "doc50", "doc199"):
                assert kernel.score(query, doc_id) == pytest.approx(
                    legacy.score(query, doc_id), abs=1e-9
                )

    def test_after_mutation_churn(self):
        """Remove/re-add churn must leave the kernel equivalent to a legacy
        index that saw the same history."""
        docs = corpus(300, 80, 9)
        legacy = LegacyBM25Index()
        legacy.add_batch(docs)
        kernel = BM25Index()
        kernel.add_batch(docs)
        rng = random.Random(9)
        for _ in range(50):
            doc_id, text = docs[rng.randrange(len(docs))]
            legacy.remove(doc_id)
            kernel.remove(doc_id)
            legacy.add(doc_id, text + " t1x")
            kernel.add(doc_id, text + " t1x")
        kernel.compile()
        for query in queries_for(docs, 15, 9):
            assert_hits_equal(legacy.search(query, k=8), kernel.search(query, k=8), query)


class TestHNSWEquivalence:
    @pytest.mark.parametrize("metric", ["cosine", "l2", "ip"])
    @pytest.mark.parametrize("n,seed", [(40, 0), (250, 1), (600, 2)])
    def test_same_graph_same_rankings(self, metric, n, seed):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(n, 16))
        legacy = LegacyHNSWIndex(dim=16, metric=metric, m=8, ef_construction=64, seed=7)
        kernel = HNSWIndex(dim=16, metric=metric, m=8, ef_construction=64, seed=7)
        for i, vec in enumerate(vectors):
            legacy.add(f"v{i}", vec)
            kernel.add(f"v{i}", vec)
        qs = rng.normal(size=(12, 16))
        for compiled in (False, True):
            if compiled:
                kernel.compile()
            for legacy_hits, kernel_hits in zip(
                legacy.search_batch(qs, k=8), kernel.search_batch(qs, k=8)
            ):
                assert [h.key for h in legacy_hits] == [h.key for h in kernel_hits]
                for lhit, khit in zip(legacy_hits, kernel_hits):
                    assert abs(lhit.distance - khit.distance) <= TOL

    def test_discrete_embeddings_with_exact_ties(self):
        """Hashing embeddings produce distances that tie in exact
        arithmetic; grid quantization must make both engines break the
        ties by node id, not float noise."""
        from repro.text import HashingEmbedder

        docs = corpus(500, 60, 3)
        embedder = HashingEmbedder(dim=32)
        matrix = embedder.embed_batch([text for _, text in docs])
        legacy = LegacyHNSWIndex(dim=32, m=8, ef_construction=64, seed=13)
        kernel = HNSWIndex(dim=32, m=8, ef_construction=64, seed=13)
        for (doc_id, _), vec in zip(docs, matrix):
            legacy.add(doc_id, vec)
            kernel.add(doc_id, vec)
        kernel.compile()
        query_vectors = embedder.embed_batch(queries_for(docs, 20, 3))
        for legacy_hits, kernel_hits in zip(
            legacy.search_batch(query_vectors, k=10), kernel.search_batch(query_vectors, k=10)
        ):
            assert [h.key for h in legacy_hits] == [h.key for h in kernel_hits]


class TestHybridEquivalence:
    @pytest.mark.parametrize("n_docs,vocab,seed", [(80, 50, 0), (300, 100, 4)])
    @pytest.mark.parametrize("mode", ["hybrid", "bm25", "vector"])
    def test_fusion_matches_across_modes(self, n_docs, vocab, seed, mode):
        docs = corpus(n_docs, vocab, seed)
        qs = queries_for(docs, 20, seed)
        legacy = HybridIndex(dim=48, legacy=True)
        legacy.add_batch(docs)
        legacy.freeze()
        kernel = HybridIndex(dim=48)
        kernel.add_batch(docs)
        # Unfrozen kernel: dict-based fusion over the array halves.
        for legacy_hits, kernel_hits in zip(
            legacy.search_batch(qs, k=5, mode=mode), kernel.search_batch(qs, k=5, mode=mode)
        ):
            assert_hits_equal(legacy_hits, kernel_hits, f"unfrozen:{mode}")
        # Frozen kernel: compiled halves + int-id fusion.
        kernel.freeze()
        assert kernel.kernel_stats()["compiled"]
        for legacy_hits, kernel_hits in zip(
            legacy.search_batch(qs, k=5, mode=mode), kernel.search_batch(qs, k=5, mode=mode)
        ):
            assert_hits_equal(legacy_hits, kernel_hits, f"frozen:{mode}")
            for lhit, khit in zip(legacy_hits, kernel_hits):
                assert lhit.bm25_rank == khit.bm25_rank
                assert lhit.vector_rank == khit.vector_rank

    def test_fusion_pool_respected_by_both_kernels(self):
        docs = corpus(300, 80, 6)
        qs = queries_for(docs, 15, 6)
        legacy = HybridIndex(dim=48, legacy=True, fusion_pool=25)
        legacy.add_batch(docs)
        legacy.freeze()
        kernel = HybridIndex(dim=48, fusion_pool=25)
        kernel.add_batch(docs)
        kernel.freeze()
        for legacy_hits, kernel_hits in zip(
            legacy.search_batch(qs, k=5), kernel.search_batch(qs, k=5)
        ):
            assert_hits_equal(legacy_hits, kernel_hits, "fusion_pool=25")

    def test_reindexed_docs_fuse_correctly_after_freeze(self):
        """Re-adding changed content recycles BM25 slots and updates HNSW
        in place; the freeze-time id interning must still fuse right."""
        docs = corpus(120, 50, 8)
        legacy = HybridIndex(dim=48, legacy=True)
        kernel = HybridIndex(dim=48)
        for index in (legacy, kernel):
            index.add_batch(docs)
            # Replace a third of the corpus with new content.
            for doc_id, text in docs[::3]:
                index.add(doc_id, text + " t2x t3x")
            index.freeze()
        for query in queries_for(docs, 15, 8):
            assert_hits_equal(legacy.search(query, k=5), kernel.search(query, k=5), query)
