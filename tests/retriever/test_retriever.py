"""Unit tests for Pneuma-Retriever: narration, hybrid index, discovery."""

import pytest

from repro.relational import Database, Table
from repro.retriever import HybridIndex, PneumaRetriever, narrate_table, sample_rows, table_payload


@pytest.fixture
def lake():
    db = Database("lake")
    db.register(
        Table.from_columns(
            "tariff_rates",
            {"country": ["Germany", "France"], "new_tariff": [0.15, 0.12]},
        )
    )
    db.register(
        Table.from_columns(
            "purchase_orders",
            {"supplier": ["ACME", "Globex"], "price": [10.0, 20.0]},
        )
    )
    db.register(
        Table.from_columns(
            "weather_daily",
            {"station": ["S1", "S2"], "rainfall_mm": [1.0, 3.5]},
        )
    )
    return db


class TestNarration:
    def test_includes_name_columns_and_values(self, lake):
        text = narrate_table(lake.resolve_table("tariff_rates"))
        assert "tariff_rates" in text
        assert "country" in text
        assert "Germany" in text
        assert "DOUBLE" in text

    def test_sample_rows_json_safe(self, lake):
        rows = sample_rows(lake.resolve_table("tariff_rates"), n=1)
        assert rows == [{"country": "Germany", "new_tariff": "0.15"}]

    def test_payload_shape(self, lake):
        payload = table_payload(lake.resolve_table("tariff_rates"))
        assert payload["name"] == "tariff_rates"
        assert payload["num_rows"] == 2
        assert {c["name"] for c in payload["columns"]} == {"country", "new_tariff"}


class TestHybridIndex:
    def test_modes(self):
        index = HybridIndex(dim=64)
        index.add("a", "tariff schedule for imported goods")
        index.add("b", "daily rainfall by weather station")
        for mode in ("hybrid", "bm25", "vector"):
            hits = index.search("import tariffs", k=2, mode=mode)
            assert hits, mode
            assert hits[0].doc_id == "a", mode

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            HybridIndex(dim=64).search("x", mode="psychic")

    def test_fusion_combines_ranks(self):
        index = HybridIndex(dim=64)
        index.add("a", "alpha beta gamma")
        index.add("b", "alpha delta epsilon")
        hits = index.search("alpha beta", k=2)
        assert hits[0].doc_id == "a"
        assert hits[0].bm25_rank is not None
        assert hits[0].vector_rank is not None

    def test_len_contains(self):
        index = HybridIndex(dim=64)
        index.add("x", "text")
        assert len(index) == 1 and "x" in index


class TestPneumaRetriever:
    def test_finds_right_table(self, lake):
        retriever = PneumaRetriever(lake)
        docs = retriever.search("what are the new tariffs by country", k=2)
        assert docs[0].title == "tariff_rates"
        assert docs[0].kind == "table"
        assert docs[0].payload["columns"]

    def test_each_question_finds_its_table(self, lake):
        retriever = PneumaRetriever(lake)
        cases = {
            "supplier purchase prices": "purchase_orders",
            "rainfall at weather stations": "weather_daily",
        }
        for query, expected in cases.items():
            assert retriever.search(query, k=1)[0].title == expected

    def test_column_values_grounding(self, lake):
        retriever = PneumaRetriever(lake)
        values = retriever.column_values("tariff_rates", "country")
        assert values == ["Germany", "France"]

    def test_refresh_picks_up_new_tables(self, lake):
        retriever = PneumaRetriever(lake)
        lake.register(Table.from_columns("budgets", {"dept": ["IT"], "usd": [1.0]}))
        retriever.refresh()
        docs = retriever.search("department budgets in usd", k=1)
        assert docs[0].title == "budgets"
