"""Planted scenarios: chain structure, oracle, determinism, stress modes."""

import pytest

from repro.llm.semantics import detect_aggregate
from repro.scenarios import ScenarioCell, build_scenario, enumerate_grid
from repro.scenarios.generator import derive_seed
from repro.sim.scenario import ScenarioPersona


def cell(ku="KK", hops=2, intent="enrich", entity_class="subject", relation="custody"):
    return ScenarioCell(
        endpoint_known=ku[0] == "K",
        relation_known=ku[1] == "K",
        hops=hops,
        intent=intent,
        entity_class=entity_class,
        relation_type=relation,
    )


class TestDeriveSeed:
    def test_stable_and_tag_sensitive(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
        assert derive_seed(7, "a") != derive_seed(8, "a")


class TestChainStructure:
    def test_chain_tables_edges_and_relations(self):
        s = build_scenario(cell(hops=3), seed=5)
        assert len(s.chain) == 4
        assert len(s.edges) == 3
        assert s.relations[0] == s.cell.relation_type
        assert len(set(s.relations)) == 3  # distinct relation word per edge
        for i, edge in enumerate(s.edges):
            assert edge.child == s.chain[i + 1]
            assert edge.parent == s.chain[i]
            singular = s.nouns[edge.parent]
            assert edge.fk == f"{singular}_{s.relations[i]}_ref"
            assert edge.pk == f"{singular}_id"
            child = s.lake.resolve_table(edge.child)
            assert edge.fk in child.column_names()

    def test_id_domains_are_disjoint(self):
        s = build_scenario(cell(hops=2), seed=5)
        domains = []
        for table in s.chain + s.distractors:
            singular = s.nouns.get(table)
            t = s.lake.resolve_table(table)
            id_col = next(c for c in t.column_names() if c.endswith("_id"))
            values = [v for v in t.column_values(id_col) if v is not None]
            domains.append(set(values))
        for i, a in enumerate(domains):
            for b in domains[i + 1 :]:
                assert not (a & b)

    def test_pseudo_bridge_mimics_name_but_shares_no_values(self):
        s = build_scenario(cell(hops=2), seed=5)
        archive = f"{s.chain[1]}_archive"
        assert archive in s.distractors
        real_fk = s.edges[0].fk
        fake = s.lake.resolve_table(archive)
        assert real_fk in fake.column_names()  # textually plausible
        root_ids = set(s.lake.resolve_table(s.root).column_values(s.edges[0].pk))
        fake_refs = {v for v in fake.column_values(real_fk) if v is not None}
        assert not (root_ids & fake_refs)  # relationally dead

    def test_request_columns_follow_intent(self):
        enrich = build_scenario(cell(intent="enrich"), seed=5)
        for table, col in enrich.request_columns():
            assert col == enrich.attrs[table]
        discover = build_scenario(cell(intent="discover"), seed=5)
        for table, col in discover.request_columns():
            assert col == discover.labels[table]


class TestOracle:
    def test_one_hop_oracle_matches_sql_inner_join(self):
        s = build_scenario(cell(hops=1), seed=9)
        (root, root_col), (deep, deep_col) = s.request_columns()
        edge = s.edges[0]
        joined = s.lake.execute(
            f"SELECT {root}.{root_col}, {deep}.{deep_col} "
            f"FROM {deep} JOIN {root} ON {deep}.{edge.fk} = {root}.{edge.pk}"
        )
        got = sorted(
            zip(joined.column_values(root_col), joined.column_values(deep_col)),
            key=repr,
        )
        assert got == sorted(s.oracle_rows(), key=repr)

    def test_null_foreign_keys_drop_rows(self):
        s = build_scenario(cell(hops=1), seed=9)
        deep = s.lake.resolve_table(s.deep)
        non_null = sum(1 for v in deep.column_values(s.edges[0].fk) if v is not None)
        assert non_null < deep.num_rows  # the generator planted some nulls
        assert len(s.oracle_rows()) == non_null


class TestDeterminism:
    def test_same_seed_rebuilds_identical_lakes(self):
        a = build_scenario(cell(hops=2), seed=7)
        b = build_scenario(cell(hops=2), seed=7)
        assert a.chain == b.chain and a.relations == b.relations
        assert a.lake.table_names() == b.lake.table_names()
        for name in a.lake.table_names():
            assert (
                a.lake.resolve_table(name).to_columns()
                == b.lake.resolve_table(name).to_columns()
            )

    def test_different_cells_never_share_draws(self):
        a = build_scenario(cell(hops=2, intent="enrich"), seed=7)
        b = build_scenario(cell(hops=2, intent="discover"), seed=7)
        assert a.attrs != b.attrs or a.chain != b.chain


class TestStressModes:
    def test_drift_plan_targets_the_deep_request_column(self):
        s = build_scenario(cell(ku="KU", hops=1), seed=7, stress="drift")
        assert s.drift is not None and not s.drift.applied
        assert s.drift.table == s.deep
        assert s.drift.old_column == s.attrs[s.deep]
        assert "_revised_" in s.drift.new_column

    def test_noisy_twins_shadow_endpoints_without_false_columns(self):
        s = build_scenario(cell(hops=2), seed=7, stress="noisy")
        chain_attr_words = {col.split("_", 1)[1] for col in s.attrs.values()}
        for endpoint in (s.root, s.deep):
            twin = f"{endpoint}_registry"
            assert twin in s.distractors
            for col in s.lake.resolve_table(twin).column_names():
                assert col.split("_", 1)[1].split("_")[-1] not in chain_attr_words

    def test_break_chain_drops_the_first_bridge(self):
        s = build_scenario(cell(hops=2), seed=7, break_chain=True)
        assert s.broken
        assert not s.lake.has_table(s.chain[1])

    def test_break_chain_requires_a_bridge(self):
        with pytest.raises(ValueError, match="hops >= 2"):
            build_scenario(cell(hops=1), seed=7, break_chain=True)


class TestPersonaTemplates:
    def test_no_template_trips_the_aggregate_detector(self):
        # Scenario needs are enrichment/discovery needs; a persona message
        # that accidentally reads as a computation would derail the
        # conductor into aggregate SQL instead of reification.
        for grid_cell in enumerate_grid():
            scenario = build_scenario(grid_cell, seed=7)
            persona = ScenarioPersona(scenario)
            messages = [persona._opener(), persona._probe(), persona._final_request()]
            for message in messages:
                assert detect_aggregate(message) is None, message
