"""The scenario grid: exhaustive, deterministic, well-typed cells."""

from repro.scenarios import (
    ATTRIBUTE_WORDS,
    ENTITY_CLASSES,
    RELATION_TYPES,
    ScenarioCell,
    enumerate_grid,
)


class TestEnumerateGrid:
    def test_covers_the_full_ku_by_hops_by_intent_cross(self):
        cells = enumerate_grid()
        assert len(cells) == 24  # 4 KU cells x 3 hop depths x 2 intents
        assert len(cells) >= 16  # the issue's coverage floor
        combos = {(c.ku_code, c.hops, c.intent) for c in cells}
        assert combos == {
            (ku, hops, intent)
            for ku in ["KK", "KU", "UK", "UU"]
            for hops in (1, 2, 3)
            for intent in ("discover", "enrich")
        }

    def test_cell_ids_are_unique_and_descriptive(self):
        cells = enumerate_grid()
        ids = [c.cell_id for c in cells]
        assert len(set(ids)) == len(ids)
        assert "KK-1hop-discover" in ids
        assert "UU-3hop-enrich" in ids

    def test_derived_axes_are_all_exercised(self):
        cells = enumerate_grid()
        assert {c.entity_class for c in cells} == set(ENTITY_CLASSES)
        assert {c.relation_type for c in cells} == set(RELATION_TYPES)

    def test_enumeration_is_deterministic(self):
        assert enumerate_grid() == enumerate_grid()


class TestVocabularies:
    def test_entity_classes_do_not_collide(self):
        plurals = [p for pairs in ENTITY_CLASSES.values() for p, _ in pairs]
        assert len(set(plurals)) == len(plurals)

    def test_singulars_prefix_their_plurals(self):
        for pairs in ENTITY_CLASSES.values():
            for plural, singular in pairs:
                assert plural.startswith(singular[:4])

    def test_attribute_words_are_distinct(self):
        assert len(set(ATTRIBUTE_WORDS)) == len(ATTRIBUTE_WORDS)


class TestScenarioCell:
    def test_ku_code_letters(self):
        cell = ScenarioCell(
            endpoint_known=True,
            relation_known=False,
            hops=2,
            intent="discover",
            entity_class="subject",
            relation_type="custody",
        )
        assert cell.ku_code == "KU"
        assert cell.cell_id == "KU-2hop-discover"
