"""The coverage harness: per-cell grading, stress runners, report stability."""

from repro.scenarios import (
    ScenarioCell,
    build_scenario,
    render_grid,
    report_to_json,
    run_cell,
    run_grid,
)
from repro.scenarios.stress import append_rows, run_append_cell


def cell(ku="KK", hops=1, intent="enrich", entity_class="subject", relation="custody"):
    return ScenarioCell(
        endpoint_known=ku[0] == "K",
        relation_known=ku[1] == "K",
        hops=hops,
        intent=intent,
        entity_class=entity_class,
        relation_type=relation,
    )


class TestRunCell:
    def test_kk_enrich_converges_in_one_turn(self):
        result = run_cell(build_scenario(cell(), seed=7))
        assert result.converged, result.detail
        assert result.turns == 1
        assert result.detail == ""

    def test_uk_walk_converges_in_multiple_turns(self):
        result = run_cell(build_scenario(cell(ku="UK", hops=2), seed=7))
        assert result.converged, result.detail
        assert result.turns > 1  # opener + walk before the final request

    def test_uu_discover_converges(self):
        result = run_cell(
            build_scenario(cell(ku="UU", hops=1, intent="discover"), seed=7)
        )
        assert result.converged, result.detail

    def test_checks_are_graded_independently(self):
        result = run_cell(build_scenario(cell(), seed=7))
        assert result.satisfied and result.retrieved_ok
        assert result.aligned_ok and result.rows_ok and result.service_ok


class TestStressCells:
    def test_noisy_twins_do_not_derail_convergence(self):
        result = run_cell(build_scenario(cell(ku="KU", hops=2), seed=7, stress="noisy"))
        assert result.converged, result.detail

    def test_drift_is_applied_and_survived(self):
        scenario = build_scenario(cell(ku="KU", hops=1), seed=7, stress="drift")
        result = run_cell(scenario)
        assert scenario.drift.applied  # the hook really renamed mid-session
        assert result.converged, result.detail
        assert result.turns > 1

    def test_append_restart_converges_on_grown_lake(self, tmp_path):
        scenario = build_scenario(cell(hops=1), seed=7, stress="append")
        before = scenario.lake.resolve_table(scenario.deep).num_rows
        result = run_append_cell(scenario, tmp_path, count=16)
        assert scenario.lake.resolve_table(scenario.deep).num_rows == before + 16
        assert result.converged, result.detail
        assert result.service_ok  # second service warm-started from disk

    def test_append_rows_extend_the_oracle(self):
        scenario = build_scenario(cell(hops=1), seed=7, stress="append")
        before = len(scenario.oracle_rows())
        append_rows(scenario, count=16)
        assert len(scenario.oracle_rows()) == before + 16  # appended fks non-null

    def test_broken_chain_is_reported_not_converged(self):
        result = run_cell(build_scenario(cell(hops=2), seed=7, break_chain=True))
        assert not result.converged
        assert not result.aligned_ok
        assert "alignment refused" in result.detail


class TestReports:
    def subset(self):
        return [
            cell(ku="KK", hops=1, intent="enrich"),
            cell(ku="KU", hops=1, intent="discover", entity_class="location"),
        ]

    def test_report_is_byte_identical_across_runs(self):
        first = report_to_json(run_grid(cells=self.subset(), seed=7))
        second = report_to_json(run_grid(cells=self.subset(), seed=7))
        assert first == second

    def test_report_json_shape(self):
        report = run_grid(cells=self.subset(), seed=7)
        payload = report.to_json()
        assert payload["cells_total"] == 2
        assert payload["cells_converged"] == 2
        assert payload["coverage"] == 1.0
        assert {c["cell_id"] for c in payload["cells"]} == {
            "KK-1hop-enrich",
            "KU-1hop-discover",
        }

    def test_render_grid_marks_cells(self):
        report = run_grid(cells=self.subset(), seed=7)
        text = render_grid(report)
        assert "2/2 cells" in text
        assert "KK" in text and "KU" in text
        assert "FAIL" not in text

    def test_render_grid_lists_failing_cells(self):
        report = run_grid(cells=[cell(hops=2)], seed=7, break_chain=True)
        text = render_grid(report)
        assert "FAIL KK-2hop-enrich" in text
        assert "alignment refused" in text
