"""Admission control, deadlines, graceful drain, and error propagation."""

import threading
import time

import pytest

from repro.core import build_seeker_llm
from repro.datasets import build_procurement_lake
from repro.llm.interface import ContextLengthExceeded, ModelLimits
from repro.service import (
    DegradedResponse,
    FaultPlan,
    FaultSpec,
    PneumaService,
    ResilienceConfig,
    ServiceError,
    ServiceOverloaded,
)

QUESTION = "What is the total purchase order cost impact of the new tariffs by supplier?"


@pytest.fixture
def lake():
    return build_procurement_lake()


class GatedLLM:
    """A real seeker LLM whose calls block until ``gate`` is set —
    lets tests hold turns in flight for as long as they need."""

    def __init__(self, gate: threading.Event):
        self._inner = build_seeker_llm()
        self._gate = gate

    def complete(self, prompt: str, component: str = "") -> str:
        self._gate.wait(timeout=30)
        return self._inner.complete(prompt, component)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestAdmissionControl:
    def test_overload_sheds_with_service_overloaded(self, lake):
        gate = threading.Event()
        service = PneumaService(
            lake,
            max_workers=1,
            llm_factory=lambda: GatedLLM(gate),
            resilience=ResilienceConfig(max_pending_turns=2),
        )
        try:
            sid = service.open_session()
            futures = [service.post_turn(sid, QUESTION, wait=False) for _ in range(2)]
            with pytest.raises(ServiceOverloaded):
                service.post_turn(sid, QUESTION)
            gate.set()
            for future in futures:
                assert future.result(timeout=30).message
            stats = service.stats()
            assert stats["turns_shed"] == 1
            assert stats["admission"]["peak_pending_turns"] == 2
            assert stats["admission"]["max_pending_turns"] == 2
            assert stats["admission"]["pending_turns"] == 0
        finally:
            gate.set()
            service.shutdown()

    def test_overloaded_is_a_service_error(self):
        assert issubclass(ServiceOverloaded, ServiceError)

    def test_pending_count_recovers_after_shed(self, lake):
        gate = threading.Event()
        gate.set()  # never actually block
        service = PneumaService(
            lake,
            max_workers=1,
            llm_factory=lambda: GatedLLM(gate),
            resilience=ResilienceConfig(max_pending_turns=1),
        )
        try:
            sid = service.open_session()
            # Serial turns never exceed a bound of 1.
            for _ in range(3):
                assert service.post_turn(sid, QUESTION).message
            assert service.stats()["turns_shed"] == 0
        finally:
            service.shutdown()


class TestDeadlines:
    def test_deadline_returns_degraded_response_with_pending(self, lake):
        gate = threading.Event()
        service = PneumaService(lake, max_workers=1, llm_factory=lambda: GatedLLM(gate))
        try:
            sid = service.open_session()
            response = service.post_turn(sid, QUESTION, deadline=0.05)
            assert isinstance(response, DegradedResponse)
            assert response.reason == "deadline"
            assert response.degraded is True
            assert response.session_id == sid
            assert "deadline" in response.render()
            # The turn keeps running; the caller can still join it late.
            gate.set()
            late = response.pending.result(timeout=30)
            assert late.message
            assert service.stats()["turns_degraded"] == 1
        finally:
            gate.set()
            service.shutdown()

    def test_queue_deadline_sheds_stale_turns(self, lake):
        gate = threading.Event()
        service = PneumaService(lake, max_workers=1, llm_factory=lambda: GatedLLM(gate))
        try:
            first_sid = service.open_session()
            second_sid = service.open_session()
            blocker = service.post_turn(first_sid, QUESTION, wait=False)
            # Queued behind the blocked worker with an already-short deadline.
            stale = service.post_turn(second_sid, QUESTION, wait=False, deadline=0.05)
            time.sleep(0.2)
            gate.set()
            assert blocker.result(timeout=30).message
            shed = stale.result(timeout=30)
            assert isinstance(shed, DegradedResponse)
            assert shed.reason == "queue-deadline"
            assert service.stats()["turns_shed"] == 1
        finally:
            gate.set()
            service.shutdown()

    def test_service_wide_deadline_from_config(self, lake):
        gate = threading.Event()
        service = PneumaService(
            lake,
            max_workers=1,
            llm_factory=lambda: GatedLLM(gate),
            resilience=ResilienceConfig(turn_deadline_seconds=0.05),
        )
        try:
            sid = service.open_session()
            response = service.post_turn(sid, QUESTION)
            assert isinstance(response, DegradedResponse)
            assert service.stats()["admission"]["turn_deadline_seconds"] == 0.05
        finally:
            gate.set()
            service.shutdown()

    def test_no_deadline_waits_to_completion(self, lake):
        with PneumaService(lake, max_workers=1) as service:
            sid = service.open_session()
            assert service.post_turn(sid, QUESTION).message


class TestContextLengthPropagation:
    """ContextLengthExceeded crosses the pool unchanged (satellite)."""

    def overflow_service(self, lake):
        return PneumaService(
            lake,
            max_workers=2,
            llm_factory=lambda: build_seeker_llm(limits=ModelLimits(context_tokens=10)),
        )

    def test_wait_true_raises_in_caller(self, lake):
        with self.overflow_service(lake) as service:
            sid = service.open_session()
            with pytest.raises(ContextLengthExceeded):
                service.post_turn(sid, QUESTION)
            assert service.stats()["turns_failed"] == 1

    def test_future_path_raises_on_result(self, lake):
        with self.overflow_service(lake) as service:
            sid = service.open_session()
            future = service.post_turn(sid, QUESTION, wait=False)
            with pytest.raises(ContextLengthExceeded):
                future.result(timeout=30)
            assert service.stats()["turns_failed"] == 1
            # The failed turn released its admission slot.
            assert service.stats()["admission"]["pending_turns"] == 0

    def test_session_survives_an_overflow_turn(self, lake):
        with self.overflow_service(lake) as service:
            sid = service.open_session()
            with pytest.raises(ContextLengthExceeded):
                service.post_turn(sid, QUESTION)
            summary = service.close_session(sid)
            assert summary.turns == 0


class TestDegradedRetrieval:
    def test_vector_outage_serves_bm25_and_flags_the_turn(self, lake):
        plan = FaultPlan(seed=3, retriever=FaultSpec(outages=((1, 10_000),)))
        with PneumaService(lake, max_workers=2, fault_plan=plan) as service:
            sid = service.open_session()
            response = service.post_turn(sid, QUESTION)
            # The turn succeeded on the lexical half and says so.
            assert response.message
            assert response.degraded is True
            stats = service.stats()
            assert stats["degraded_retrievals"] >= 1
            assert stats["turns_degraded"] >= 1

    def test_breaker_opens_and_stops_probing_the_dense_half(self, lake):
        plan = FaultPlan(seed=3, retriever=FaultSpec(outages=((1, 10_000),)))
        with PneumaService(lake, max_workers=2, fault_plan=plan) as service:
            sid = service.open_session()
            for _ in range(6):
                service.post_turn(sid, QUESTION)
            assert service.breakers["vector"].state == "open"
            faults = service.stats()["faults"]["retriever"]
            # Once open, searches skip the embedder: fault count plateaus
            # at the breaker threshold instead of growing per turn.
            assert faults["faults"] == service.breakers["vector"].failure_threshold
            transitions = service.stats()["breaker_transitions"]
            assert transitions.get("vector:closed->open", 0) >= 1

    def test_healthy_service_flags_nothing(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            sid = service.open_session()
            response = service.post_turn(sid, QUESTION)
            assert response.degraded is False
            stats = service.stats()
            assert stats["degraded_retrievals"] == 0
            assert stats["turns_degraded"] == 0
            assert stats["breakers"]["vector"]["state"] == "closed"


class TestDrainShutdown:
    def test_drain_closes_and_summarizes_sessions(self, lake):
        service = PneumaService(lake, max_workers=2)
        first = service.open_session(user="a")
        second = service.open_session(user="b")
        service.post_turn(first, QUESTION)
        summaries = service.shutdown(drain=True)
        assert {s.session_id for s in summaries} == {first, second}
        by_id = {s.session_id: s for s in summaries}
        assert by_id[first].turns == 1
        assert by_id[second].turns == 0
        assert service.open_session_count() == 0
        assert service.stats()["sessions_closed"] == 2

    def test_drain_waits_out_inflight_turns(self, lake):
        gate = threading.Event()
        service = PneumaService(lake, max_workers=1, llm_factory=lambda: GatedLLM(gate))
        sid = service.open_session()
        future = service.post_turn(sid, QUESTION, wait=False)
        threading.Timer(0.2, gate.set).start()
        summaries = service.shutdown(drain=True)
        # The in-flight turn finished before its session was summarized.
        assert summaries[0].turns == 1
        assert future.result(timeout=5).message

    def test_shutdown_without_drain_returns_nothing(self, lake):
        service = PneumaService(lake, max_workers=1)
        service.open_session()
        assert service.shutdown() == []

    def test_drained_service_rejects_everything(self, lake):
        service = PneumaService(lake, max_workers=1)
        sid = service.open_session()
        service.shutdown(drain=True)
        with pytest.raises(ServiceError):
            service.open_session()
        with pytest.raises(ServiceError):
            service.post_turn(sid, QUESTION)
        with pytest.raises(ServiceError):
            service.close_session(sid)
