"""Batch retrieval: N-at-once calls must equal N sequential calls."""

import pytest

from repro.datasets import build_procurement_lake, load_archaeology
from repro.retriever import FrozenIndexError, HybridIndex, PneumaRetriever
from repro.service import PneumaService

QUERIES = [
    "tariff rates for imported goods by country",
    "purchase orders and supplier prices",
    "department budget allocations",
    "which suppliers are in Germany",
]


@pytest.fixture(scope="module")
def lake():
    return build_procurement_lake()


class TestServiceBatchRetrieve:
    def test_matches_sequential_retrieve(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            batched = service.batch_retrieve(QUERIES)
            sequential = [service.ir.retrieve(q) for q in QUERIES]
            assert len(batched) == len(sequential)
            for got, want in zip(batched, sequential):
                assert got.query == want.query
                assert got.per_source == want.per_source
                assert [d.doc_id for d in got.documents] == [d.doc_id for d in want.documents]
                assert [d.score for d in got.documents] == [d.score for d in want.documents]

    def test_empty_batch(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            assert service.batch_retrieve([]) == []

    def test_counts_batch_queries(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            service.batch_retrieve(QUERIES[:2])
            assert service.stats()["batch_queries"] == 2


class TestRetrieverSearchBatch:
    def test_matches_sequential_search(self, lake):
        retriever = PneumaRetriever(lake)
        batched = retriever.search_batch(QUERIES, k=3)
        for query, docs in zip(QUERIES, batched):
            solo = retriever.search(query, k=3)
            assert [d.doc_id for d in docs] == [d.doc_id for d in solo]

    def test_at_scale(self):
        dataset = load_archaeology(scale=0.02)
        retriever = PneumaRetriever(dataset.lake)
        queries = [q.text for q in dataset.questions]
        batched = retriever.search_batch(queries, k=4)
        assert len(batched) == len(queries)
        for query, docs in zip(queries, batched):
            assert [d.doc_id for d in docs] == [
                d.doc_id for d in retriever.search(query, k=4)
            ]


class TestHybridIndexBatch:
    @pytest.fixture
    def index(self):
        index = HybridIndex(dim=64)
        index.add_batch(
            [
                ("tariffs", "tariff schedule for imported goods"),
                ("orders", "purchase orders by supplier and price"),
                ("weather", "daily rainfall by weather station"),
                ("budgets", "department budget allocations in dollars"),
            ]
        )
        return index

    @pytest.mark.parametrize("mode", ["hybrid", "bm25", "vector"])
    def test_search_batch_matches_search(self, index, mode):
        queries = ["import tariffs", "supplier prices", "rainfall"]
        batched = index.search_batch(queries, k=2, mode=mode)
        for query, hits in zip(queries, batched):
            solo = index.search(query, k=2, mode=mode)
            assert [(h.doc_id, h.score) for h in hits] == [(h.doc_id, h.score) for h in solo]

    def test_add_batch_equals_adds(self):
        pairs = [("a", "alpha beta"), ("b", "gamma delta"), ("c", "epsilon zeta")]
        one = HybridIndex(dim=64)
        one.add_batch(pairs)
        other = HybridIndex(dim=64)
        for doc_id, text in pairs:
            other.add(doc_id, text)
        for query in ("alpha", "gamma epsilon"):
            assert [h.doc_id for h in one.search(query, k=3)] == [
                h.doc_id for h in other.search(query, k=3)
            ]

    def test_empty_batches(self, index):
        assert index.search_batch([], k=3) == []
        index.add_batch([])  # no-op, no error

    def test_freeze_blocks_mutation(self, index):
        index.freeze()
        assert index.frozen
        with pytest.raises(FrozenIndexError):
            index.add("late", "too late to index")
        with pytest.raises(FrozenIndexError):
            index.add_batch([("later", "also too late")])
        # Searching a frozen index still works.
        assert index.search("tariffs", k=1)[0].doc_id == "tariffs"
