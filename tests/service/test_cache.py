"""Narration/embedding caches: hit/miss accounting and fingerprint reuse."""

from repro.datasets import build_procurement_lake
from repro.relational import Table
from repro.retriever import NarrationCache, PneumaRetriever, table_fingerprint
from repro.service import build_shared_retriever
from repro.text import CachedEmbedder


class TestTableFingerprint:
    def test_stable_for_equal_content(self):
        a = Table.from_columns("t", {"x": [1, 2], "y": ["a", "b"]})
        b = Table.from_columns("t", {"x": [1, 2], "y": ["a", "b"]})
        assert table_fingerprint(a) == table_fingerprint(b)

    def test_changes_with_rows(self):
        a = Table.from_columns("t", {"x": [1, 2]})
        b = Table.from_columns("t", {"x": [1, 3]})
        assert table_fingerprint(a) != table_fingerprint(b)

    def test_changes_with_name_and_schema(self):
        a = Table.from_columns("t", {"x": [1]})
        renamed = Table.from_columns("u", {"x": [1]})
        recol = Table.from_columns("t", {"y": [1]})
        assert table_fingerprint(a) != table_fingerprint(renamed)
        assert table_fingerprint(a) != table_fingerprint(recol)


class TestNarrationCache:
    def test_hit_miss_counters(self):
        cache = NarrationCache()
        table = Table.from_columns("t", {"x": [1, 2, 3]})
        first = cache.narrate(table)
        second = cache.narrate(table)
        assert first == second
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_changed_table_misses(self):
        cache = NarrationCache()
        cache.narrate(Table.from_columns("t", {"x": [1]}))
        cache.narrate(Table.from_columns("t", {"x": [2]}))
        stats = cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_evict(self):
        cache = NarrationCache()
        cache.narrate(Table.from_columns("t", {"x": [1]}))
        cache.evict("t")
        assert cache.stats()["size"] == 0


class TestCachedEmbedder:
    def test_hit_miss_counters(self):
        embedder = CachedEmbedder(dim=64)
        first = embedder.embed("tariff rates by country")
        second = embedder.embed("tariff rates by country")
        assert (first == second).all()
        assert embedder.stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_matches_uncached(self):
        cached = CachedEmbedder(dim=64)
        plain = cached.inner
        assert (cached.embed("hello world") == plain.embed("hello world")).all()

    def test_bounded(self):
        embedder = CachedEmbedder(dim=64, max_entries=3)
        for i in range(10):
            embedder.embed(f"text number {i}")
        assert embedder.stats()["size"] <= 3

    def test_batch_uses_cache(self):
        embedder = CachedEmbedder(dim=64)
        embedder.embed_batch(["a b c", "d e f"])
        embedder.embed_batch(["a b c", "d e f", "g h i"])
        stats = embedder.stats()
        assert stats["hits"] == 2 and stats["misses"] == 3


class TestReindex:
    def test_unchanged_catalog_skips_everything(self):
        lake = build_procurement_lake()
        retriever = PneumaRetriever(lake)
        report = retriever.reindex()
        assert report == {"indexed": 0, "skipped": len(lake.tables())}
        # The skip happened before narration: no extra cache traffic.
        assert retriever.cache_stats()["misses"] == len(lake.tables())

    def test_new_table_is_picked_up(self):
        lake = build_procurement_lake()
        retriever = PneumaRetriever(lake)
        lake.register(Table.from_columns("freight", {"lane": ["EU-US"], "cost": [1200.0]}))
        report = retriever.reindex()
        assert report["indexed"] == 1
        assert retriever.search("freight lane costs", k=1)[0].title == "freight"

    def test_changed_table_is_reindexed(self):
        lake = build_procurement_lake()
        retriever = PneumaRetriever(lake)
        bigger = Table.from_columns("suppliers", {"supplier": ["ACME", "Globex", "Initech"]})
        lake.register(bigger, replace=True)
        report = retriever.reindex()
        assert report["indexed"] == 1
        assert report["skipped"] == len(lake.tables()) - 1


class TestWarmRebuild:
    def test_rebuild_reuses_caches(self):
        lake = build_procurement_lake()
        cold = build_shared_retriever(lake)
        assert cold.cache_stats()["narration"]["misses"] == len(lake.tables())
        assert cold.cache_stats()["narration"]["hits"] == 0

        warm = build_shared_retriever(
            lake, narrations=cold.narrations, embedder=cold.embedder
        )
        narration_stats = warm.cache_stats()["narration"]
        assert narration_stats["hits"] == len(lake.tables())
        # A warm rebuild answers queries identically to the cold build.
        query = "purchase orders by supplier"
        assert [d.doc_id for d in warm.retriever.search(query)] == [
            d.doc_id for d in cold.retriever.search(query)
        ]


class TestChangedContentReindex:
    def test_dense_vector_follows_changed_content(self):
        """A re-indexed table must rank by its new content on the dense side."""
        from repro.relational import Database

        lake = Database("lake")
        lake.register(Table.from_columns("facts", {"note": ["zebra zebra zebra"]}))
        lake.register(Table.from_columns("other", {"note": ["unrelated filler words"]}))
        retriever = PneumaRetriever(lake)
        assert retriever.search("zebra", k=1, mode="vector")[0].title == "facts"

        lake.register(
            Table.from_columns("facts", {"note": ["quokka quokka quokka"]}), replace=True
        )
        retriever.reindex()
        assert retriever.search("quokka", k=1, mode="vector")[0].title == "facts"
        # The old content no longer dominates the dense ranking.
        hits = retriever.index.search("zebra", k=2, mode="vector")
        assert not hits or hits[0].doc_id != "facts" or hits[0].score < 0.02

    def test_narration_cache_keeps_one_entry_per_table(self):
        cache = NarrationCache()
        for i in range(5):
            cache.narrate(Table.from_columns("t", {"x": [i]}))
        assert cache.stats()["size"] == 1

    def test_build_report_is_real(self):
        lake = build_procurement_lake()
        bundle = build_shared_retriever(lake)
        assert bundle.build_report == {"indexed": len(lake.tables()), "skipped": 0}
        assert bundle.retriever.build_report["indexed"] == len(lake.tables())

    def test_failed_frozen_reindex_leaves_retriever_intact(self):
        """FrozenIndexError must not half-commit narrations/fingerprints."""
        import pytest

        from repro.retriever import FrozenIndexError

        lake = build_procurement_lake()
        retriever = PneumaRetriever(lake).freeze()
        before = retriever.narration("suppliers")
        lake.register(
            Table.from_columns("suppliers", {"supplier": ["ACME", "Globex", "Initech"]}),
            replace=True,
        )
        with pytest.raises(FrozenIndexError):
            retriever.reindex()
        # Nothing committed: narration still matches the indexed text, and
        # the change is still seen as pending (not silently swallowed).
        assert retriever.narration("suppliers") == before
        assert retriever.narration("suppliers") == retriever.index.text_of("suppliers")
        with pytest.raises(FrozenIndexError):
            retriever.reindex()

    def test_unchanged_frozen_reindex_is_allowed(self):
        lake = build_procurement_lake()
        retriever = PneumaRetriever(lake).freeze()
        assert retriever.reindex() == {"indexed": 0, "skipped": len(lake.tables())}
