"""The deterministic fault-injection harness: specs, schedules, wrappers."""

import pytest

from repro.core import SeekerSession, build_seeker_llm
from repro.core.sql_executor import SQLExecutor
from repro.datasets import build_procurement_lake
from repro.llm.clock import VirtualClock
from repro.llm.interface import TransientDependencyError, is_retryable
from repro.retriever import PneumaRetriever
from repro.service import (
    FaultPlan,
    FaultSchedule,
    FaultSpec,
    FlakyLLM,
    FlakyRetriever,
    FlakySQL,
    PneumaService,
)

QUESTION = "What is the total purchase order cost impact of the new tariffs by supplier?"


class TestFaultSpec:
    def test_noop_detection(self):
        assert FaultSpec().is_noop
        assert not FaultSpec(rate=0.1).is_noop
        assert not FaultSpec(fail_calls=(3,)).is_noop
        assert not FaultSpec(outages=((1, 5),)).is_noop
        assert not FaultSpec(latency_seconds=1.0).is_noop

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(latency_seconds=-1)
        with pytest.raises(ValueError):
            FaultSpec(outages=((0, 5),))
        with pytest.raises(ValueError):
            FaultSpec(outages=((5, 2),))


def fault_indexes(schedule: FaultSchedule, calls: int):
    """Which 1-based call indexes failed over ``calls`` calls."""
    failed = []
    for i in range(1, calls + 1):
        try:
            schedule.before_call()
        except TransientDependencyError:
            failed.append(i)
    return failed


class TestFaultSchedule:
    def test_fail_nth_call_exactly(self):
        sched = FaultSchedule("llm", FaultSpec(fail_calls=(2, 5)), seed=1)
        assert fault_indexes(sched, 6) == [2, 5]

    def test_outage_window(self):
        sched = FaultSchedule("llm", FaultSpec(outages=((3, 6),)), seed=1)
        assert fault_indexes(sched, 8) == [3, 4, 5]

    def test_rate_faults_are_seed_deterministic(self):
        a = fault_indexes(FaultSchedule("llm", FaultSpec(rate=0.3), seed=42), 200)
        b = fault_indexes(FaultSchedule("llm", FaultSpec(rate=0.3), seed=42), 200)
        c = fault_indexes(FaultSchedule("llm", FaultSpec(rate=0.3), seed=43), 200)
        assert a == b
        assert a != c  # astronomically unlikely to collide over 200 draws
        assert 20 <= len(a) <= 100  # rate ~0.3 of 200

    def test_latency_ticks_the_clock(self):
        clock = VirtualClock()
        sched = FaultSchedule("llm", FaultSpec(latency_seconds=2.5), seed=0)
        sched.before_call(clock=clock)
        sched.before_call(clock=clock)
        assert clock.now == pytest.approx(5.0)

    def test_error_is_retryable_and_attributed(self):
        sched = FaultSchedule("sql", FaultSpec(fail_calls=(1,)), seed=0)
        with pytest.raises(TransientDependencyError) as exc_info:
            sched.before_call()
        assert exc_info.value.dependency == "sql"
        assert is_retryable(exc_info.value)
        assert sched.stats() == {"calls": 1, "faults": 1}


class TestFaultPlan:
    def test_noop_specs_yield_no_schedule(self):
        plan = FaultPlan.none(seed=9)
        assert plan.schedule("llm") is None
        assert plan.schedule("retriever") is None
        assert plan.schedule("sql") is None

    def test_unknown_dependency_rejected(self):
        with pytest.raises(KeyError):
            FaultPlan().schedule("disk")

    def test_instances_get_distinct_but_reproducible_streams(self):
        plan_a = FaultPlan(seed=7, llm=FaultSpec(rate=0.4))
        plan_b = FaultPlan(seed=7, llm=FaultSpec(rate=0.4))
        a0, a1 = plan_a.schedule("llm"), plan_a.schedule("llm")
        b0, b1 = plan_b.schedule("llm"), plan_b.schedule("llm")
        assert fault_indexes(a0, 100) == fault_indexes(b0, 100)
        assert fault_indexes(a1, 100) == fault_indexes(b1, 100)
        # Distinct instances draw distinct streams under one plan.
        assert a0.seed != a1.seed

    def test_stats_aggregate_per_dependency(self):
        plan = FaultPlan(seed=1, llm=FaultSpec(fail_calls=(1,)), sql=FaultSpec(rate=0.5))
        llm_sched = plan.schedule("llm")
        sql_sched = plan.schedule("sql")
        fault_indexes(llm_sched, 3)
        fault_indexes(sql_sched, 10)
        stats = plan.stats()
        assert stats["llm"] == {"calls": 3, "faults": 1, "streams": 1}
        assert stats["sql"]["calls"] == 10
        assert stats["sql"]["streams"] == 1


class TestFlakyLLM:
    def test_passthrough_is_bit_transparent(self):
        lake = build_procurement_lake()
        plain = SeekerSession(lake, enable_web=False)
        plain_response = plain.submit(QUESTION)

        flaky = FlakyLLM(build_seeker_llm(), FaultSchedule("llm", FaultSpec(rate=0.0), seed=0))
        wrapped = SeekerSession(lake, llm=flaky, enable_web=False)
        wrapped_response = wrapped.submit(QUESTION)
        assert wrapped_response.message == plain_response.message
        assert wrapped_response.state_view == plain_response.state_view
        # Metering delegates to the wrapped model untouched.
        assert flaky.ledger.total().prompt_tokens == plain.llm.ledger.total().prompt_tokens

    def test_scheduled_fault_escapes_the_turn(self):
        lake = build_procurement_lake()
        flaky = FlakyLLM(
            build_seeker_llm(), FaultSchedule("llm", FaultSpec(fail_calls=(1,)), seed=0)
        )
        session = SeekerSession(lake, llm=flaky, enable_web=False)
        with pytest.raises(TransientDependencyError):
            session.submit(QUESTION)
        # The schedule moved on; the next turn's calls succeed.
        response = session.submit(QUESTION)
        assert response.message


class TestFlakyRetriever:
    def test_vector_half_fails_but_bm25_survives(self):
        lake = build_procurement_lake()
        retriever = PneumaRetriever(lake)
        retriever.freeze()
        flaky = FlakyRetriever(
            retriever, FaultSchedule("retriever", FaultSpec(outages=((1, 100),)), seed=0)
        )
        # Hybrid needs the (now flaky) query embedder -> transient error.
        with pytest.raises(TransientDependencyError):
            flaky.search("tariff rates by country", k=3)
        # The lexical half never embeds, so BM25-only mode still serves.
        hits = flaky.search("tariff rates by country", k=3, mode="bm25")
        assert hits and all(not d.degraded for d in hits)

    def test_proxies_the_retriever_surface(self):
        lake = build_procurement_lake()
        retriever = PneumaRetriever(lake)
        flaky = FlakyRetriever(retriever, FaultSchedule("retriever", FaultSpec(rate=0.0), seed=0))
        assert flaky.frozen is False
        assert flaky.database is lake
        assert flaky.narration("suppliers")


class TestFlakySQL:
    def test_transient_error_is_not_swallowed_as_sql_error(self):
        lake = build_procurement_lake()
        flaky = FlakySQL(lake, FaultSchedule("sql", FaultSpec(fail_calls=(2,)), seed=0))
        executor = SQLExecutor(flaky)
        ok = executor.execute("SELECT COUNT(*) FROM purchase_orders")
        assert ok.ok and ok.table.rows[0][0] > 0
        # The second call fails like a crashed backend: it escapes the
        # executor rather than becoming LLM-repairable error feedback.
        with pytest.raises(TransientDependencyError):
            executor.execute("SELECT COUNT(*) FROM purchase_orders")

    def test_real_sql_errors_still_feed_the_repair_loop(self):
        lake = build_procurement_lake()
        flaky = FlakySQL(lake, FaultSchedule("sql", FaultSpec(rate=0.0), seed=0))
        result = SQLExecutor(flaky).execute("SELECT nope FROM missing_table")
        assert not result.ok
        assert result.error


class TestServiceLevelDeterminism:
    """Same seed -> same failure schedule -> same responses (satellite)."""

    CONVERSATION = [QUESTION, "Now restrict it to orders from ACME."]

    def _drive(self, plan: FaultPlan):
        lake = build_procurement_lake()
        outcomes = []
        with PneumaService(lake, max_workers=2, fault_plan=plan) as service:
            sid = service.open_session(user="det")
            for message in self.CONVERSATION:
                try:
                    response = service.post_turn(sid, message)
                    outcomes.append(("ok", response.message, response.state_view))
                except Exception as exc:  # noqa: BLE001 - recording outcome shape
                    outcomes.append(("error", type(exc).__name__, str(exc)))
            stats = service.stats()
        return outcomes, stats

    def test_same_seed_same_responses(self):
        spec = FaultSpec(rate=0.25)
        first, first_stats = self._drive(FaultPlan(seed=11, llm=spec))
        second, second_stats = self._drive(FaultPlan(seed=11, llm=spec))
        assert first == second
        assert first_stats["faults"] == second_stats["faults"]
        assert first_stats["retries"] == second_stats["retries"]

    def test_different_seed_changes_the_schedule(self):
        spec = FaultSpec(rate=0.25)
        _, stats_a = self._drive(FaultPlan(seed=11, llm=spec))
        _, stats_b = self._drive(FaultPlan(seed=12, llm=spec))
        assert stats_a["faults"] != stats_b["faults"]
