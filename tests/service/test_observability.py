"""Service-level observability: spans, outcomes, exposition, transparency."""

import pytest

from repro.datasets import build_procurement_lake
from repro.service import (
    DegradedResponse,
    ObservabilityConfig,
    PneumaService,
    ServiceMetrics,
)

RETRIEVAL_QUESTION = (
    "What is the total purchase order cost impact of the new tariffs by supplier?"
)
SQL_QUESTION = "What is the total price of purchase orders by supplier?"


@pytest.fixture(scope="module")
def lake():
    return build_procurement_lake()


def traced_service(lake, **overrides):
    defaults = dict(slow_turn_seconds=0.0)
    defaults.update(overrides)
    return PneumaService(lake, max_workers=2, observability=ObservabilityConfig(**defaults))


class TestSpanTrees:
    def test_turn_trace_covers_every_stage(self, lake):
        with traced_service(lake) as service:
            session = service.open_session(user="alice")
            service.post_turn(session, SQL_QUESTION)
            root = service.tracer.traces("turn")[0]
        names = set(root.span_names())
        # The Seeker loop's stages, nested under one root.
        assert {"turn", "llm.complete", "action.retrieve", "retrieval.search"} <= names
        assert {"retrieval.bm25", "retrieval.vector", "retrieval.fusion"} <= names
        assert {"action.execute_sql", "sql.execute", "sql.run"} <= names
        assert root.attrs["outcome"] == "ok"
        assert root.attrs["session"] == session
        assert root.attrs["user"] == "alice"
        # Every child closed inside the root's window.
        for span in root.iter_spans():
            assert span.end is not None
            assert root.start <= span.start <= span.end <= root.end

    def test_untraced_service_keeps_no_tracer(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            session = service.open_session(user="u")
            service.post_turn(session, RETRIEVAL_QUESTION)
            assert service.tracer is None and service.slow_turns is None
            assert "obs" not in service.stats()

    def test_tracing_disabled_config_is_untraced(self, lake):
        config = ObservabilityConfig(tracing=False)
        with PneumaService(lake, max_workers=2, observability=config) as service:
            assert service.tracer is None

    def test_stats_exposes_obs_accounting(self, lake):
        with traced_service(lake) as service:
            session = service.open_session(user="u")
            service.post_turn(session, RETRIEVAL_QUESTION)
            obs_stats = service.stats()["obs"]
        assert obs_stats["tracer"]["traces_finished"] == 1
        assert obs_stats["tracer"]["spans_recorded"] > 1
        assert obs_stats["slow_turns"]["offered"] == 1

    def test_trace_ids_deterministic_across_services(self, lake):
        ids = []
        for _ in range(2):
            with traced_service(lake, trace_seed=11) as service:
                session = service.open_session(user="u")
                service.post_turn(session, RETRIEVAL_QUESTION)
                root = service.tracer.traces("turn")[0]
                ids.append((root.trace_id, root.span_id))
        assert ids[0] == ids[1]


class TestTransparency:
    def test_responses_identical_with_and_without_tracing(self):
        def transcript(observability):
            out = []
            with PneumaService(
                build_procurement_lake(), max_workers=2, observability=observability
            ) as service:
                session = service.open_session(user="u")
                for message in (RETRIEVAL_QUESTION, SQL_QUESTION):
                    response = service.post_turn(session, message)
                    out.append((response.message, response.state_view, response.degraded))
            return out

        baseline = transcript(None)
        assert transcript(ObservabilityConfig(tracing=False)) == baseline
        assert transcript(ObservabilityConfig()) == baseline


class TestOutcomes:
    def test_failed_turn_classified_and_retained(self, lake):
        with traced_service(lake, slow_turn_seconds=1000.0) as service:
            session = service.open_session(user="u")

            def explode(managed, message, deadline_at):
                raise RuntimeError("injected")

            service._serve_turn = explode
            with pytest.raises(RuntimeError):
                service.post_turn(session, RETRIEVAL_QUESTION)
            root = service.tracer.traces("turn")[0]
            exemplars = service.slow_turns.exemplars()
        assert root.status == "error" and root.attrs["error"] == "RuntimeError"
        # Despite a huge latency threshold, the failed turn is an exemplar.
        assert [e["outcome"] for e in exemplars] == ["failed"]

    def test_shed_turn_classified(self, lake):
        with traced_service(lake, slow_turn_seconds=1000.0) as service:
            session = service.open_session(user="u")

            def shed(managed, message, deadline_at):
                return DegradedResponse(
                    session_id=managed.session_id, reason="queue-deadline", message="shed"
                )

            service._serve_turn = shed
            service.post_turn(session, RETRIEVAL_QUESTION)
            root = service.tracer.traces("turn")[0]
            exemplars = service.slow_turns.exemplars()
        assert root.attrs["outcome"] == "shed"
        assert [e["outcome"] for e in exemplars] == ["shed"]

    def test_slow_turn_log_keeps_every_turn_at_zero_threshold(self, lake):
        with traced_service(lake) as service:
            session = service.open_session(user="u")
            service.post_turn(session, RETRIEVAL_QUESTION)
            service.post_turn(session, SQL_QUESTION)
            stats = service.slow_turns.stats()
            slowest = service.slow_turns.slowest()
        assert stats["offered"] == stats["held"] == 2
        assert slowest.name == "turn" and slowest.duration > 0


class TestMetricsSurface:
    def test_metrics_text_exposition(self, lake):
        with traced_service(lake) as service:
            session = service.open_session(user="u")
            service.post_turn(session, RETRIEVAL_QUESTION)
            text = service.metrics_text()
        assert "# TYPE pneuma_sessions_opened counter" in text
        assert "pneuma_sessions_opened_total 1" in text
        assert "# TYPE pneuma_turn_seconds histogram" in text
        assert 'pneuma_turn_seconds_bucket{le="+Inf"} 1' in text
        assert "pneuma_turn_seconds_count 1" in text

    def test_snapshot_backward_compatible(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            session = service.open_session(user="u")
            service.post_turn(session, RETRIEVAL_QUESTION)
            snap = service.metrics.snapshot()
        # The pre-registry dict contract: int counters, float percentiles,
        # breaker transitions keyed "dep:old->new".
        for key in (
            "sessions_opened", "sessions_closed", "turns_served", "turns_failed",
            "turns_shed", "turns_degraded", "batch_queries", "retries",
            "degraded_retrievals", "reindex_swaps",
        ):
            assert isinstance(snap[key], int), key
        assert snap["sessions_opened"] == 1 and snap["turns_served"] == 1
        for key in ("turn_p50_seconds", "turn_p95_seconds", "turn_p99_seconds",
                    "turn_mean_seconds"):
            assert isinstance(snap[key], float) and snap[key] > 0
        assert snap["breaker_transitions"] == {}

    def test_breaker_transition_labels_round_trip(self):
        metrics = ServiceMetrics()
        metrics.record_breaker_transition("llm", "closed", "open")
        metrics.record_breaker_transition("llm", "closed", "open")
        metrics.record_breaker_transition("vector", "open", "half-open")
        snap = metrics.snapshot()
        assert snap["breaker_transitions"] == {
            "llm:closed->open": 2,
            "vector:open->half-open": 1,
        }
        text_value = metrics.registry.get("pneuma_breaker_transitions")
        assert text_value.labels("llm", "closed", "open").value == 2

    def test_turn_latency_single_sort(self):
        metrics = ServiceMetrics()
        for v in (0.3, 0.1, 0.2):
            metrics.record_turn(v)
        assert metrics.turn_latency(0) == 0.1
        assert metrics.turn_latency(100) == 0.3
        assert metrics.turn_latency(50) == pytest.approx(0.2)
