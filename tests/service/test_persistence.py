"""Service-level persistence: warm starts, knowledge WAL, crash injection."""

import pytest

from repro.datasets import build_procurement_lake
from repro.service import CrashSpec, FaultPlan, PneumaService
from repro.storage import IndexStore, SimulatedCrash
from repro.storage.store import CP_PUBLISH_AFTER_SEGMENTS

QUERIES = ["tariff impact by supplier", "purchase orders", "supplier contact details"]
QUESTION = "What is the total purchase order cost impact of the new tariffs by supplier?"


def search_results(service, k=5):
    return [
        [(h.doc_id, h.score) for h in hits]
        for hits in service.retriever.index.search_batch(QUERIES, k=k)
    ]


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


class TestWarmStart:
    def test_cold_then_warm_bit_identical(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        assert not svc.warm_started
        oracle = search_results(svc)
        svc.shutdown(drain=True)

        warm = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        assert warm.warm_started
        storage = warm.stats()["storage"]
        assert storage["open_mode"] == "clean"
        assert storage["warm_start"] is True
        assert storage["opens"] == {"clean": 2, "recovered": 0}
        # Bit-identical: no-crash persistence is transparent to retrieval.
        assert search_results(warm) == oracle
        # A warm-started index reports zero narration work.
        assert warm.shared.build_report["indexed"] == 0
        assert warm.shared.build_report["restored"] > 0
        warm.shutdown(drain=True)

    def test_warm_start_absorbs_new_table(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        svc.shutdown(drain=True)

        lake = build_procurement_lake()
        from repro.relational.table import Table

        lake.register(
            Table.from_columns("zebra_census", {"zebra_id": [1, 2], "stripes": [30, 44]})
        )
        warm = PneumaService(lake, max_workers=2, storage_dir=store_dir)
        assert warm.warm_started
        # Only the new table was narrated; the snapshot served the rest.
        assert warm.shared.build_report["indexed"] == 1
        hits = warm.retriever.index.search("zebra stripes census", k=3)
        assert hits[0].doc_id == "zebra_census"
        warm.shutdown(drain=True)

    def test_turns_work_on_a_warm_start(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        svc.shutdown(drain=True)
        warm = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        sid = warm.open_session()
        response = warm.post_turn(sid, QUESTION)
        assert response.message
        warm.close_session(sid)
        warm.shutdown(drain=True)


class TestKnowledgeDurability:
    def test_journaled_capture_survives_crash(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        svc.knowledge.add("tariffs include direct and indirect", topic="tariffs")
        svc.store.close()  # die without drain: no save, no clean marker

        recovered = PneumaService(
            build_procurement_lake(), max_workers=2, storage_dir=store_dir
        )
        assert recovered.stats()["storage"]["open_mode"] == "recovered"
        texts = [e.text for e in recovered.knowledge.entries()]
        assert "tariffs include direct and indirect" in texts
        recovered.shutdown(drain=True)

    def test_clean_shutdown_folds_into_save(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        svc.knowledge.add("saved knowledge", topic="t")
        svc.shutdown(drain=True)
        assert (store_dir / "knowledge.json").exists()

        warm = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        texts = [e.text for e in warm.knowledge.entries()]
        assert texts.count("saved knowledge") == 1  # no WAL-replay duplicate
        warm.shutdown(drain=True)


class TestReindexPublish:
    def test_reindex_publishes_through_journal(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        report = svc.reindex()
        assert report["published_generation"] == 2  # gen 1 was the boot publish
        assert svc.store.fsck()["ok"]
        svc.shutdown(drain=True)

    def test_crash_mid_reindex_preserves_previous_snapshot(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        oracle = search_results(svc)
        svc.shutdown(drain=True)

        plan = FaultPlan(storage=CrashSpec.nth(CP_PUBLISH_AFTER_SEGMENTS))
        crashing = PneumaService(
            build_procurement_lake(), max_workers=2, storage_dir=store_dir, fault_plan=plan
        )
        with pytest.raises(SimulatedCrash):
            crashing.reindex()
        # Do NOT shut down (the process died); recover from the directory.
        recovered = PneumaService(
            build_procurement_lake(), max_workers=2, storage_dir=store_dir
        )
        assert recovered.stats()["storage"]["open_mode"] == "recovered"
        assert search_results(recovered) == oracle
        assert recovered.store.fsck()["ok"]
        recovered.shutdown(drain=True)


class TestStats:
    def test_storage_absent_without_store(self):
        svc = PneumaService(build_procurement_lake(), max_workers=2)
        assert "storage" not in svc.stats()
        svc.shutdown()

    def test_storage_block_shape(self, store_dir):
        svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
        storage = svc.stats()["storage"]
        for key in ("open_mode", "opens", "generation", "segments", "warm_start"):
            assert key in storage
        svc.shutdown(drain=True)
