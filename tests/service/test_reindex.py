"""Snapshot-swap reindexing: the gate, the proxy, and the service call."""

import threading

import pytest

from repro.datasets import build_procurement_lake
from repro.relational.table import Table
from repro.service import (
    IndexGate,
    PneumaService,
    ServiceError,
    SwappableRetriever,
    build_shared_retriever,
)

QUESTION = "What is the total purchase order cost impact of the new tariffs by supplier?"


@pytest.fixture
def lake():
    return build_procurement_lake()


def add_shipments_table(lake):
    """Register a new, distinctive table the seed lake does not have."""
    lake.register(
        Table.from_columns(
            "ocean_freight_shipments",
            {
                "shipment_id": [1, 2, 3],
                "vessel_name": ["Ever Given", "Maersk Alabama", "MSC Oscar"],
                "container_count": [120, 45, 300],
                "port_of_origin": ["Shanghai", "Mombasa", "Rotterdam"],
            },
        ),
        replace=True,
    )


class TestIndexGate:
    def test_readers_pin_their_generation_across_a_swap(self, lake):
        old_bundle = build_shared_retriever(lake)
        gate = IndexGate(old_bundle)
        new_bundle = build_shared_retriever(lake)
        with gate.reading() as pinned:
            # Swap mid-read without draining: the reader keeps the bundle
            # it entered with while new readers see the new one.
            gate.swap(new_bundle, drain=False)
            assert pinned is old_bundle
            with gate.reading() as fresh:
                assert fresh is new_bundle
        assert gate.current is new_bundle
        assert gate.stats() == {"generation": 1, "swaps": 1, "active_readers": 0}

    def test_drain_waits_for_old_readers(self, lake):
        gate = IndexGate(build_shared_retriever(lake))
        new_bundle = build_shared_retriever(lake)
        reader_entered = threading.Event()
        release_reader = threading.Event()
        swap_returned = threading.Event()

        def slow_reader():
            with gate.reading():
                reader_entered.set()
                release_reader.wait(timeout=10)

        reader = threading.Thread(target=slow_reader)
        reader.start()
        assert reader_entered.wait(timeout=10)

        def swapper():
            gate.swap(new_bundle, drain=True)
            swap_returned.set()

        swap = threading.Thread(target=swapper)
        swap.start()
        # New traffic is not blocked while the drain waits.
        assert gate.current is new_bundle
        assert not swap_returned.wait(timeout=0.2)
        release_reader.set()
        assert swap_returned.wait(timeout=10)
        reader.join(timeout=10)
        swap.join(timeout=10)

    def test_swappable_retriever_follows_the_gate(self, lake):
        gate = IndexGate(build_shared_retriever(lake))
        retriever = SwappableRetriever(gate)
        assert retriever.frozen
        before = [d.doc_id for d in retriever.search("supplier ratings", k=3)]
        assert before

        add_shipments_table(lake)
        gate.swap(build_shared_retriever(lake), drain=True)
        hits = retriever.search("ocean freight shipments by vessel", k=3)
        assert any(d.doc_id == "table:ocean_freight_shipments" for d in hits)


class TestServiceReindex:
    def test_reindex_without_changes_is_a_warm_noop(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            report = service.reindex()
            # Every table was recognized by fingerprint in the warm caches.
            assert report["build_report"] == {"indexed": len(lake.tables()), "skipped": 0}
            # The narration pass was entirely cache hits — no table changed.
            assert service.shared.narrations.stats()["hits"] >= len(lake.tables())
            assert report["generation"] == 1
            assert report["drained"] is True
            assert service.stats()["reindex_swaps"] == 1

    def test_new_table_becomes_retrievable_after_reindex(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            size_before = len(service.shared.retriever.index)
            sid = service.open_session()
            add_shipments_table(lake)
            report = service.reindex()
            assert report["index_size"] == size_before + 1
            # A session opened before the swap sees the new index: its
            # retriever handle follows the gate.
            response = service.post_turn(
                sid, "How many containers are on the ocean freight shipments by vessel?"
            )
            assert "ocean_freight_shipments" in response.state_view

    def test_reindex_during_traffic_fails_no_turns(self, lake):
        with PneumaService(lake, max_workers=4) as service:
            sids = [service.open_session() for _ in range(4)]
            stop = threading.Event()
            errors = []

            def chatter(sid):
                while not stop.is_set():
                    try:
                        service.post_turn(sid, QUESTION)
                    except Exception as exc:  # noqa: BLE001 - the assertion
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=chatter, args=(sid,)) for sid in sids]
            for thread in threads:
                thread.start()
            try:
                for _ in range(3):
                    service.reindex()
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60)
            assert errors == []
            stats = service.stats()
            assert stats["reindex_swaps"] == 3
            assert stats["turns_failed"] == 0
            assert stats["index_gate"]["generation"] == 3
            assert stats["index_gate"]["active_readers"] == 0

    def test_reindex_after_shutdown_raises(self, lake):
        service = PneumaService(lake, max_workers=1)
        service.shutdown()
        with pytest.raises(ServiceError):
            service.reindex()

    def test_batch_retrieve_follows_the_swap(self, lake):
        with PneumaService(lake, max_workers=2) as service:
            add_shipments_table(lake)
            service.reindex()
            results = service.batch_retrieve(["ocean freight shipments by vessel"])
            assert any(
                d.doc_id == "table:ocean_freight_shipments" for d in results[0].documents
            )
