"""Retry policy, circuit breaker, and the resilient LLM wrapper."""

import random

import pytest

from repro.core import SeekerSession, build_seeker_llm
from repro.datasets import build_procurement_lake
from repro.llm.clock import VirtualClock
from repro.llm.interface import ContextLengthExceeded, ModelLimits, TransientDependencyError
from repro.service import (
    CircuitBreaker,
    DependencyUnavailable,
    FaultSchedule,
    FaultSpec,
    FlakyLLM,
    ResilientLLM,
    RetryPolicy,
    ServiceMetrics,
)

QUESTION = "What is the total purchase order cost impact of the new tariffs by supplier?"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_seconds=-1)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay_seconds=1.0, multiplier=2.0, max_delay_seconds=5.0, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.backoff(1, rng) == 1.0
        assert policy.backoff(2, rng) == 2.0
        assert policy.backoff(3, rng) == 4.0
        assert policy.backoff(4, rng) == 5.0  # capped

    def test_jitter_is_seed_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_seconds=1.0, multiplier=1.0, jitter=0.5)
        a = [policy.backoff(1, random.Random(7)) for _ in range(3)]
        b = [policy.backoff(1, random.Random(7)) for _ in range(3)]
        assert a == b
        assert all(1.0 <= delay <= 1.5 for delay in a)


class FakeTime:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, **kwargs):
        self.transitions = []
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_seconds", 10.0)
        self.time = FakeTime()
        return CircuitBreaker(
            "llm",
            time_fn=self.time,
            on_transition=lambda dep, old, new: self.transitions.append((dep, old, new)),
            **kwargs,
        )

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1
        assert self.transitions == [("llm", "closed", "open")]

    def test_success_resets_the_failure_count(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        self.time.now = 10.0  # cool-down elapsed
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # probe budget spent
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert ("llm", "open", "half_open") in self.transitions
        assert ("llm", "half_open", "closed") in self.transitions

    def test_half_open_probe_failure_reopens(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        self.time.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        # The cool-down restarts from the re-trip.
        self.time.now = 19.0
        assert not breaker.allow()
        self.time.now = 20.0
        assert breaker.allow()

    def test_stats_shape(self):
        breaker = self.make()
        breaker.record_failure()
        assert breaker.stats() == {"state": "closed", "consecutive_failures": 1, "trips": 0}


class CountingLLM:
    """A minimal model that fails its first ``failures`` calls."""

    model_name = "counting"

    def __init__(self, failures: int = 0):
        self.failures = failures
        self.calls = 0
        self.clock = None

    def complete(self, prompt: str, component: str = "") -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientDependencyError("llm", f"call {self.calls} failed")
        return f"ok after {self.calls}"


class TestResilientLLM:
    def test_retries_through_transient_failures(self):
        inner = CountingLLM(failures=2)
        metrics = ServiceMetrics()
        llm = ResilientLLM(inner, retry=RetryPolicy(max_attempts=3), metrics=metrics)
        assert llm.complete("p") == "ok after 3"
        assert metrics.snapshot()["retries"] == 2

    def test_exhausted_retries_raise_the_transient_error(self):
        inner = CountingLLM(failures=5)
        llm = ResilientLLM(inner, retry=RetryPolicy(max_attempts=3))
        with pytest.raises(TransientDependencyError):
            llm.complete("p")
        assert inner.calls == 3

    def test_max_attempts_one_disables_retry(self):
        inner = CountingLLM(failures=1)
        llm = ResilientLLM(inner, retry=RetryPolicy(max_attempts=1))
        with pytest.raises(TransientDependencyError):
            llm.complete("p")
        assert inner.calls == 1

    def test_context_length_exceeded_is_not_retried(self):
        class OverflowLLM(CountingLLM):
            def complete(self, prompt, component=""):
                self.calls += 1
                raise ContextLengthExceeded(999, 10)

        inner = OverflowLLM()
        breaker = CircuitBreaker("llm", failure_threshold=1)
        llm = ResilientLLM(inner, retry=RetryPolicy(max_attempts=3), breaker=breaker)
        with pytest.raises(ContextLengthExceeded):
            llm.complete("p")
        assert inner.calls == 1
        # A healthy model with an oversized prompt must not trip the breaker.
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_breaker_refuses_before_calling(self):
        inner = CountingLLM(failures=0)
        breaker = CircuitBreaker("llm", failure_threshold=1, recovery_seconds=1e9)
        breaker.record_failure()
        llm = ResilientLLM(inner, breaker=breaker)
        with pytest.raises(DependencyUnavailable):
            llm.complete("p")
        assert inner.calls == 0

    def test_failures_feed_the_breaker(self):
        inner = CountingLLM(failures=10)
        breaker = CircuitBreaker("llm", failure_threshold=3, recovery_seconds=1e9)
        llm = ResilientLLM(inner, retry=RetryPolicy(max_attempts=5), breaker=breaker)
        with pytest.raises((TransientDependencyError, DependencyUnavailable)):
            llm.complete("p")
        assert breaker.state == CircuitBreaker.OPEN

    def test_backoff_ticks_the_virtual_clock(self):
        inner = CountingLLM(failures=1)
        inner.clock = VirtualClock()
        retry = RetryPolicy(max_attempts=2, base_delay_seconds=3.0, jitter=0.0)
        llm = ResilientLLM(inner, retry=retry)
        llm.complete("hello")
        # One retry -> one 3-second backoff tick on the virtual clock.
        assert inner.clock.now == pytest.approx(3.0)

    def test_success_path_is_bit_transparent(self):
        lake = build_procurement_lake()
        plain = SeekerSession(lake, enable_web=False)
        plain_response = plain.submit(QUESTION)

        resilient = ResilientLLM(build_seeker_llm(), retry=RetryPolicy())
        wrapped = SeekerSession(lake, llm=resilient, enable_web=False)
        wrapped_response = wrapped.submit(QUESTION)
        assert wrapped_response.message == plain_response.message
        assert wrapped_response.state_view == plain_response.state_view
        assert resilient.ledger.total() == plain.llm.ledger.total()

    def test_turn_survives_scheduled_faults_with_retry(self):
        lake = build_procurement_lake()
        plain_response = SeekerSession(lake, enable_web=False).submit(QUESTION)
        flaky = FlakyLLM(
            build_seeker_llm(), FaultSchedule("llm", FaultSpec(fail_calls=(1, 3)), seed=0)
        )
        llm = ResilientLLM(flaky, retry=RetryPolicy(max_attempts=3))
        response = SeekerSession(lake, llm=llm, enable_web=False).submit(QUESTION)
        # Retried calls repeat the same prompt, so the answer is unchanged.
        assert response.message == plain_response.message


def test_model_limits_still_enforced_through_the_stack():
    """ContextLengthExceeded from real limit checks crosses both wrappers."""
    tiny = build_seeker_llm(limits=ModelLimits(context_tokens=10))
    stack = ResilientLLM(
        FlakyLLM(tiny, FaultSchedule("llm", FaultSpec(rate=0.0), seed=0)),
        retry=RetryPolicy(max_attempts=3),
    )
    with pytest.raises(ContextLengthExceeded):
        stack.complete("a definitely much too long prompt " * 40)
