"""Schema drift mid-session: version-keyed plan cache + re-planning.

A live rename of a planted column must (1) bump the catalog version so
the shared SQL plan cache can never serve a stale plan, and (2) leave
the service able to converge on the *renamed* column in the very next
turn, after the drift hook reindexes retrieval.
"""

import pytest

from repro.scenarios import ScenarioCell, build_scenario
from repro.scenarios.stress import apply_drift
from repro.service import PneumaService


@pytest.fixture
def scenario():
    cell = ScenarioCell(
        endpoint_known=True,
        relation_known=True,
        hops=1,
        intent="enrich",
        entity_class="subject",
        relation_type="licensing",
    )
    return build_scenario(cell, seed=21, stress="drift")


@pytest.fixture
def service(scenario):
    svc = PneumaService(scenario.lake, max_workers=1, dim=64)
    yield svc
    svc.shutdown()


def enrich_message(scenario):
    (root, root_col), (deep, deep_col) = scenario.request_columns()
    return (
        f"Please link the {root} records to the {deep} records they "
        f"reach, and show the {root_col.replace('_', ' ')} alongside "
        f"the {deep_col.replace('_', ' ')}."
    )


class TestPlanCacheInvalidation:
    def test_register_replace_bumps_catalog_version(self, scenario, service):
        before = scenario.lake.version
        apply_drift(service, scenario)
        assert scenario.lake.version > before
        assert scenario.drift.applied

    def test_same_sql_replans_after_drift(self, scenario, service):
        # Warm the cache on an untouched chain table, prove a hit, then
        # drift: the key embeds the catalog version, so the identical
        # statement must miss (re-plan) instead of reusing a stale plan.
        sql = f"SELECT COUNT(*) FROM {scenario.root}"
        scenario.lake.execute(sql)
        scenario.lake.execute(sql)
        warmed = service.sql_plan_cache.stats()
        assert warmed["hits"] >= 1
        apply_drift(service, scenario)
        scenario.lake.execute(sql)
        assert service.sql_plan_cache.stats()["misses"] == warmed["misses"] + 1

    def test_dropped_column_is_refused_not_served_stale(self, scenario, service):
        old = scenario.drift.old_column
        sql = f"SELECT {old} FROM {scenario.drift.table}"
        scenario.lake.execute(sql)  # plan cached against the old schema
        apply_drift(service, scenario)
        with pytest.raises(Exception, match=old):
            scenario.lake.execute(sql)


class TestDriftRecovery:
    def test_next_turn_converges_on_renamed_column(self, scenario, service):
        sid = service.open_session(user="drift-recovery")
        first = service.post_turn(sid, enrich_message(scenario)).render()
        (_, root_col), (deep, old_deep_col) = scenario.request_columns()
        assert root_col in first and old_deep_col in first
        assert "materialized (" in first

        apply_drift(service, scenario)
        (_, root_col), (_, new_deep_col) = scenario.request_columns()
        assert new_deep_col == scenario.drift.new_column
        assert new_deep_col != old_deep_col

        # The renamed column is only discoverable because the drift hook
        # reindexed; the conductor must re-retrieve the drifted table,
        # plan a fresh enrichment spec, and materialize real rows.
        second = service.post_turn(sid, enrich_message(scenario)).render()
        assert new_deep_col in second
        session = service._sessions[sid].session
        target = f"linked_{scenario.root}_{scenario.deep}"
        assert session.state.is_materialized(target)
        materialized = session.state.materialized.resolve_table(target)
        assert new_deep_col in materialized.column_names()
        assert materialized.num_rows > 0
