"""PneumaService: session lifecycle, concurrency isolation, shared knowledge."""

import threading

import pytest

from repro.core import SeekerSession
from repro.datasets import build_procurement_lake
from repro.service import PneumaService, ServiceError


@pytest.fixture
def lake():
    return build_procurement_lake()


@pytest.fixture
def service(lake):
    svc = PneumaService(lake, max_workers=4)
    yield svc
    svc.shutdown()


QUESTION = "What is the total purchase order cost impact of the new tariffs by supplier?"


class TestLifecycle:
    def test_open_post_close(self, service):
        sid = service.open_session(user="alice")
        response = service.post_turn(sid, QUESTION)
        assert response.message
        summary = service.close_session(sid)
        assert summary.session_id == sid
        assert summary.user == "alice"
        assert summary.turns == 1
        assert summary.prompt_tokens > 0

    def test_unknown_session_raises(self, service):
        with pytest.raises(ServiceError):
            service.post_turn("nope", QUESTION)

    def test_closed_session_rejects_turns(self, service):
        sid = service.open_session()
        service.close_session(sid)
        with pytest.raises(ServiceError):
            service.post_turn(sid, QUESTION)

    def test_shutdown_rejects_new_sessions(self, lake):
        svc = PneumaService(lake, max_workers=2)
        svc.shutdown()
        with pytest.raises(ServiceError):
            svc.open_session()

    def test_stats_counters(self, service):
        sid = service.open_session()
        service.post_turn(sid, QUESTION)
        stats = service.stats()
        assert stats["sessions_opened"] == 1
        assert stats["turns_served"] == 1
        assert stats["open_sessions"] == 1
        assert stats["index_size"] == 3
        assert stats["turn_p95_seconds"] >= stats["turn_p50_seconds"] > 0

    def test_shared_index_is_frozen(self, service):
        assert service.shared.retriever.frozen

    def test_stats_expose_retrieval_kernel(self, service):
        retrieval = service.stats()["retrieval"]
        assert retrieval["kernel"] == "array"
        assert retrieval["compiled"] is True  # freeze() ran the compile step
        assert retrieval["frozen"] is True
        assert retrieval["fusion_pool"] is None  # adaptive default
        assert retrieval["docs"] == 3

    def test_fusion_pool_is_tunable_and_observable(self, lake):
        with PneumaService(lake, max_workers=2, fusion_pool=7) as svc:
            retrieval = svc.stats()["retrieval"]
            assert retrieval["fusion_pool"] == 7
            assert svc.shared.retriever.index.fusion_pool == 7
            # The tuned service still answers discovery queries.
            results = svc.batch_retrieve(["tariff rates by country"])
            assert results and results[0].documents


class TestConcurrencyIsolation:
    """Concurrent sessions must behave exactly like isolated ones."""

    # No knowledge-cue phrasing here ("only consider", "remember that", …):
    # those are captured into the service-wide Document Database and would
    # legitimately alter other sessions' retrievals — the cross-session
    # transfer effect, tested separately in TestSharedKnowledge.
    CONVERSATIONS = [
        [QUESTION],
        [QUESTION, "Now restrict it to orders from ACME."],
        ["Which departments have the largest budgets?"],
        [
            "What data do we have about suppliers?",
            "Show purchase order totals by supplier country.",
        ],
    ]

    def test_concurrent_sessions_do_not_interleave_state(self, lake, service):
        # Reference: each conversation replayed in a plain, solo session.
        references = []
        for messages in self.CONVERSATIONS:
            solo = SeekerSession(lake, enable_web=False)
            for message in messages:
                solo.submit(message)
            references.append(solo)

        session_ids = [service.open_session(user=f"u{i}") for i in range(len(self.CONVERSATIONS))]
        # Fan out every conversation's turns; per-session locks keep each
        # session's turn order, the pool interleaves across sessions.
        for turn_index in range(max(len(c) for c in self.CONVERSATIONS)):
            futures = []
            for sid, messages in zip(session_ids, self.CONVERSATIONS):
                if turn_index < len(messages):
                    futures.append(service.post_turn(sid, messages[turn_index], wait=False))
            for future in futures:
                future.result()

        for sid, solo, messages in zip(session_ids, references, self.CONVERSATIONS):
            managed = service._sessions[sid]
            served = managed.session
            # The conductor saw exactly this session's messages, in order.
            assert served.conductor.user_messages == messages
            # The reified need (T, Q) matches the isolated run bit-for-bit.
            assert served.state.to_json() == solo.state.to_json()
            assert served.answer_value == solo.answer_value

    def test_same_session_turns_serialize(self, service):
        sid = service.open_session()
        futures = [
            service.post_turn(sid, message, wait=False)
            for message in (QUESTION, "Only consider orders from ACME.", "Please continue.")
        ]
        for future in futures:
            future.result()
        served = service._sessions[sid].session
        assert served.conductor.user_messages == [
            QUESTION,
            "Only consider orders from ACME.",
            "Please continue.",
        ]
        assert len(served.conductor.turns) == 3

    def test_many_threads_opening_sessions(self, service):
        ids = []
        lock = threading.Lock()

        def worker():
            sid = service.open_session()
            with lock:
                ids.append(sid)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == 16
        assert service.open_session_count() == 16


class TestSharedKnowledge:
    def test_clarification_crosses_sessions(self, service):
        author = service.open_session(user="veteran")
        service.post_turn(
            author,
            "Remember that tariff impact should account for direct and indirect tariffs.",
        )
        assert len(service.knowledge) == 1

        reader = service.open_session(user="newcomer")
        served = service._sessions[reader].session
        docs = served.ir.retrieve("tariff impact").knowledge()
        assert docs, "second session should see the captured clarification"
        assert "direct and indirect" in docs[0].text


class TestConcurrentClose:
    def test_exactly_one_closer_wins(self, service):
        sid = service.open_session()
        outcomes = []
        lock = threading.Lock()

        def closer():
            try:
                service.close_session(sid)
                result = "closed"
            except ServiceError:
                result = "error"
            with lock:
                outcomes.append(result)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("closed") == 1
        assert service.stats()["sessions_closed"] == 1


class TestSharedPlanCache:
    def test_one_cache_serves_lake_and_sessions(self, service):
        # The lake and every session's scratch database adopt the
        # service-owned cache object (keys are namespaced per catalog).
        assert service.lake._plan_cache is service.sql_plan_cache
        sid = service.open_session(user="a")
        managed = service._sessions[sid]
        scratch = managed.session.state.materialized
        assert scratch._plan_cache is service.sql_plan_cache
        service.close_session(sid)

    def test_counters_aggregate_across_sessions(self):
        from repro.datasets import load_environment

        dataset = load_environment(scale=0.02)
        question = dataset.questions[0].text
        with PneumaService(dataset.lake, max_workers=2) as svc:
            first = svc.open_session(user="a")
            second = svc.open_session(user="b")
            svc.post_turn(first, question)
            svc.post_turn(second, question)
            stats = svc.stats()["sql_plan_cache"]
            # Both sessions' Conductor turns ran their Q through the one
            # shared cache, so the service-wide counters observed both.
            assert stats["hits"] + stats["misses"] >= 2
            svc.close_session(first)
            svc.close_session(second)

    def test_lake_queries_hit_the_service_cache(self, service):
        sql = "SELECT COUNT(*) FROM purchase_orders"
        service.lake.execute(sql)
        service.lake.execute(sql)
        stats = service.stats()["sql_plan_cache"]
        assert stats["misses"] >= 1 and stats["hits"] >= 1

    def test_stats_exposes_cache_counters(self, service):
        cache = service.stats()["sql_plan_cache"]
        assert set(cache) == {"hits", "misses", "evictions", "size", "capacity"}
