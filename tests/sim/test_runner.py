"""Unit tests for the LLM-Sim runner."""


from repro.core import Concept
from repro.datasets.questions import Question
from repro.eval import build_sim_llm
from repro.llm.tokens import count_tokens
from repro.sim import SimulationRunner


def make_question(concepts):
    return Question(
        qid="t-01",
        dataset="archaeology",
        text="What is the average potassium in the samples?",
        topic="soil chemistry",
        concepts=concepts,
        relevant_tables=["samples"],
        reference=lambda lake: 0.0,
    )


class ScriptedSystem:
    """A fake system that surfaces concepts then answers."""

    name = "scripted"
    kind = "seeker"

    def __init__(self, responses):
        self.responses = list(responses)
        self.received = []

    def respond(self, message):
        self.received.append(message)
        if self.responses:
            return self.responses.pop(0)
        return "nothing further"


class StonewallSystem:
    name = "stonewall"
    kind = "static"

    def respond(self, message):
        return "no relevant tables found"


class TestRunner:
    def test_convergence_flow(self):
        question = make_question(
            [Concept("samples", "seed"), Concept("potassium", "column")]
        )
        system = ScriptedSystem(
            [
                "samples has variables: potassium_ppm, region",  # surfaces column
                "the average potassium for samples: answer = 12.5",
                "the average potassium for samples: answer = 12.5",
            ]
        )
        outcome = SimulationRunner(build_sim_llm(), max_turns=10).run(system, question)
        assert outcome.converged
        assert 2 <= outcome.turns <= 4
        # The sim starts broad and only then reveals the measure.
        assert "potassium" not in system.received[0].lower()
        assert any("potassium" in m.lower() for m in system.received[1:])

    def test_non_convergence_hits_limit(self):
        question = make_question(
            [Concept("samples", "seed"), Concept("potassium", "column")]
        )
        outcome = SimulationRunner(build_sim_llm(), max_turns=5).run(
            StonewallSystem(), question
        )
        assert not outcome.converged
        assert outcome.turns == 5
        assert len(outcome.transcript) == 5

    def test_transcript_records_both_sides(self):
        question = make_question([Concept("samples", "seed")])
        system = ScriptedSystem(["samples info", "samples answer = 1"])
        outcome = SimulationRunner(build_sim_llm(), max_turns=6).run(system, question)
        assert all(t.user_message and t.system_response for t in outcome.transcript)

    def test_context_truncation(self):
        runner = SimulationRunner(build_sim_llm(), sim_context_tokens=100)
        conversation = [
            {"speaker": "you", "text": "short"},
            {"speaker": "system", "text": "long " * 400},
            {"speaker": "system", "text": "recent " * 10},
        ]
        view = runner._truncated(conversation)
        assert "[truncated]" in view[1]["text"]
        assert count_tokens(view[1]["text"]) < 200
        # Recent short turns survive untouched.
        assert view[2]["text"] == conversation[2]["text"]
