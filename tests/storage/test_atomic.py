"""Atomic publish primitives: all-or-nothing under injected crashes."""

import pytest

from repro.storage import CrashInjector, CrashSpec, SimulatedCrash, atomic_write_bytes
from repro.storage.atomic import (
    CP_ATOMIC_AFTER_RENAME,
    CP_ATOMIC_AFTER_TEMP,
    CP_ATOMIC_BEFORE_RENAME,
    atomic_write_json,
)


class TestAtomicWrite:
    def test_replaces_contents(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"
        assert list(tmp_path.glob(".*.tmp.*")) == []

    def test_json_round_trip(self, tmp_path):
        target = tmp_path / "f.json"
        atomic_write_json(target, {"b": 1, "a": [2, 3]})
        import json

        assert json.loads(target.read_text()) == {"a": [2, 3], "b": 1}

    @pytest.mark.parametrize("point", [CP_ATOMIC_AFTER_TEMP, CP_ATOMIC_BEFORE_RENAME])
    def test_crash_before_rename_preserves_old_file(self, tmp_path, point):
        target = tmp_path / "f.bin"
        atomic_write_bytes(target, b"old")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new", crash=CrashInjector(CrashSpec.nth(point)))
        assert target.read_bytes() == b"old"
        # The dead process leaves its temp file; recovery sweeps it.
        assert len(list(tmp_path.glob(".*.tmp.*"))) == 1

    def test_crash_after_rename_has_new_file(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write_bytes(target, b"old")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(
                target, b"new", crash=CrashInjector(CrashSpec.nth(CP_ATOMIC_AFTER_RENAME))
            )
        assert target.read_bytes() == b"new"

    def test_io_error_cleans_temp(self, tmp_path):
        target = tmp_path / "f.bin"

        class Boom(RuntimeError):
            pass

        class Exploder(CrashInjector):
            def reach(self, point):
                if point == CP_ATOMIC_BEFORE_RENAME:
                    raise Boom()

        with pytest.raises(Boom):
            atomic_write_bytes(target, b"x", crash=Exploder(CrashSpec.none()))
        # Non-crash failures (the process is alive) clean up after themselves.
        assert list(tmp_path.glob(".*.tmp.*")) == []
        assert not target.exists()
