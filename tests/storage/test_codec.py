"""Index ↔ segment codec: hydration is bit-identical, rebuilds are too."""

import numpy as np
import pytest

from repro.ann.hnsw import HNSWIndex
from repro.retriever.index import HybridIndex
from repro.storage import read_segment
from repro.storage.codec import (
    fusion_maps_for,
    load_bm25,
    load_fusion_parts,
    load_hnsw,
    pack_strings,
    rebuild_bm25_half,
    rebuild_hnsw_half,
    unpack_strings,
    write_bm25_segment,
    write_fusion_segment,
    write_hnsw_segment,
)
from repro.text.bm25 import BM25Index
from repro.text.embedding import HashingEmbedder

DOCS = [
    (f"doc{i}", f"table about {'finance tariffs' if i % 3 else 'supplier orders'} row {i}")
    for i in range(60)
]
QUERIES = ["tariff finance table", "supplier orders", "row 41"]


def bm25_fixture():
    index = BM25Index()
    index.add_batch(DOCS)
    index.remove("doc7")  # a freed slot must survive the round trip
    index.compile()
    return index


class TestStringPacking:
    def test_round_trip(self):
        strings = ["", "héllo", "a" * 100, "x"]
        assert unpack_strings(*pack_strings(strings)) == strings

    def test_empty(self):
        blob, offsets = pack_strings([])
        assert unpack_strings(blob, offsets) == []


class TestBM25Codec:
    def test_search_bit_identical(self, tmp_path):
        original = bm25_fixture()
        write_bm25_segment(tmp_path / "b.seg", original)
        hydrated = load_bm25(read_segment(tmp_path / "b.seg"))
        assert hydrated.hydrated
        for mine, theirs in zip(
            original.search_slots(QUERIES, k=10), hydrated.search_slots(QUERIES, k=10)
        ):
            assert np.array_equal(mine, theirs)

    def test_hydrated_rejects_mutation(self, tmp_path):
        original = bm25_fixture()
        write_bm25_segment(tmp_path / "b.seg", original)
        hydrated = load_bm25(read_segment(tmp_path / "b.seg"))
        with pytest.raises(RuntimeError, match="hydrated"):
            hydrated.add("new", "text")
        with pytest.raises(RuntimeError, match="hydrated"):
            hydrated.remove("doc3")


class TestHNSWCodec:
    def test_search_bit_identical(self, tmp_path):
        embedder = HashingEmbedder(dim=48)
        original = HNSWIndex(dim=48, seed=5)
        matrix = embedder.embed_batch([t for _, t in DOCS])
        for (doc_id, _), vector in zip(DOCS, matrix):
            original.add(doc_id, vector)
        original.compile()
        write_hnsw_segment(tmp_path / "h.seg", original)
        hydrated = load_hnsw(read_segment(tmp_path / "h.seg"))
        assert hydrated.hydrated
        probes = embedder.embed_batch(QUERIES)
        for mine, theirs in zip(
            original.search_batch_ids(probes, k=10), hydrated.search_batch_ids(probes, k=10)
        ):
            assert np.array_equal(mine, theirs)
        with pytest.raises(RuntimeError, match="hydrated"):
            hydrated.add("new", probes[0])


class TestFusionCodec:
    def _frozen(self):
        index = HybridIndex(dim=48, seed=9)
        index.add_batch(DOCS)
        return index.freeze()

    def test_full_round_trip_bit_identical(self, tmp_path):
        original = self._frozen()
        write_fusion_segment(tmp_path / "f.seg", original)
        write_bm25_segment(tmp_path / "b.seg", original.bm25)
        write_hnsw_segment(tmp_path / "h.seg", original.vectors)
        fusion = load_fusion_parts(read_segment(tmp_path / "f.seg"))
        hydrated = HybridIndex.hydrate_fusion(
            meta=fusion["meta"],
            bm25=load_bm25(read_segment(tmp_path / "b.seg")),
            vectors=load_hnsw(read_segment(tmp_path / "h.seg")),
            doc_list=fusion["doc_list"],
            texts=fusion["texts"],
            bm25_map=fusion["bm25_map"],
            vector_map=fusion["vector_map"],
        )
        assert hydrated.frozen
        for mode in ("hybrid", "bm25", "vector"):
            for mine, theirs in zip(
                original.search_batch(QUERIES, k=8, mode=mode),
                hydrated.search_batch(QUERIES, k=8, mode=mode),
            ):
                assert [(h.doc_id, h.score, h.bm25_rank, h.vector_rank) for h in mine] == [
                    (h.doc_id, h.score, h.bm25_rank, h.vector_rank) for h in theirs
                ]

    def test_export_requires_frozen_kernel(self):
        index = HybridIndex(dim=48)
        index.add_batch(DOCS[:4])
        with pytest.raises(RuntimeError, match="frozen"):
            index.export_fusion()


class TestRebuilds:
    """The quarantine path: one half rebuilt from the fusion texts must
    rank exactly like the lost original (same order, same seed)."""

    def _frozen(self):
        index = HybridIndex(dim=48, seed=9)
        index.add_batch(DOCS)
        return index.freeze()

    def test_rebuilt_bm25_half_is_identical(self):
        original = self._frozen()
        export = original.export_fusion()
        docs = list(zip(export["doc_list"], export["texts"]))
        rebuilt = rebuild_bm25_half({}, docs)
        bm25_map, _ = fusion_maps_for(rebuilt, original.vectors, export["doc_list"])
        healed = HybridIndex.hydrate_fusion(
            meta=export["meta"],
            bm25=rebuilt,
            vectors=original.vectors,
            doc_list=export["doc_list"],
            texts=export["texts"],
            bm25_map=bm25_map,
            vector_map=export["vector_map"],
            embedder=original.embedder,
        )
        self._assert_identical(original, healed)

    def test_rebuilt_hnsw_half_is_identical(self):
        original = self._frozen()
        export = original.export_fusion()
        docs = list(zip(export["doc_list"], export["texts"]))
        rebuilt = rebuild_hnsw_half(
            {"dim": export["meta"]["dim"], "seed": export["meta"]["seed"]},
            docs,
            original.embedder,
        )
        _, vector_map = fusion_maps_for(original.bm25, rebuilt, export["doc_list"])
        healed = HybridIndex.hydrate_fusion(
            meta=export["meta"],
            bm25=original.bm25,
            vectors=rebuilt,
            doc_list=export["doc_list"],
            texts=export["texts"],
            bm25_map=export["bm25_map"],
            vector_map=vector_map,
            embedder=original.embedder,
        )
        self._assert_identical(original, healed)

    def _assert_identical(self, original, healed):
        for mine, theirs in zip(
            original.search_batch(QUERIES, k=8), healed.search_batch(QUERIES, k=8)
        ):
            assert [(h.doc_id, h.score) for h in mine] == [(h.doc_id, h.score) for h in theirs]
