"""The crash-injection harness itself: specs, registry, determinism."""

import pytest

from repro.storage import CrashInjector, CrashSpec, SimulatedCrash, all_crash_points
from repro.storage.crash import describe_crash_point


class TestCrashSpec:
    def test_noop(self):
        assert CrashSpec.none().is_noop
        assert not CrashSpec.nth("x.y").is_noop
        assert not CrashSpec(rate=0.5).is_noop

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSpec(rate=1.5)
        with pytest.raises(ValueError):
            CrashSpec(at={"p": 0})


class TestRegistry:
    def test_write_paths_register_points(self):
        points = all_crash_points()
        # The write-path modules register at import; the matrix relies on
        # every one of these being present.
        for expected in (
            "atomic.after_temp_write",
            "atomic.before_rename",
            "atomic.after_rename",
            "journal.append.before_write",
            "journal.append.before_sync",
            "journal.append.after_sync",
            "store.publish.after_segments",
            "store.shutdown.before_truncate",
        ):
            assert expected in points
        for point in points:
            assert describe_crash_point(point)

    def test_sorted_and_stable(self):
        assert list(all_crash_points()) == sorted(all_crash_points())


class TestInjector:
    def test_nth_visit_fires_exactly_once(self):
        injector = CrashInjector(CrashSpec.nth("p", visit=3))
        injector.reach("p")
        injector.reach("p")
        with pytest.raises(SimulatedCrash) as exc:
            injector.reach("p")
        assert exc.value.point == "p" and exc.value.visit == 3
        # A dead process stops reaching crash points: inert afterwards.
        injector.reach("p")
        assert injector.crashed == "p"

    def test_other_points_unaffected(self):
        injector = CrashInjector(CrashSpec.nth("p"))
        injector.reach("q")
        with pytest.raises(SimulatedCrash):
            injector.reach("p")

    def test_rate_schedule_is_seed_deterministic(self):
        def trace(seed):
            injector = CrashInjector(CrashSpec(rate=0.3, seed=seed))
            hits = []
            for i in range(50):
                try:
                    injector.reach("p")
                    hits.append(False)
                except SimulatedCrash:
                    hits.append(True)
                    break
            return hits

        assert trace(7) == trace(7)
        assert trace(7) != trace(8) or trace(7)[-1]  # different seeds diverge (or both crash)

    def test_noop_injector_counts_nothing(self):
        injector = CrashInjector(CrashSpec.none())
        injector.reach("p")
        assert injector.stats() == {}

    def test_simulated_crash_is_base_exception(self):
        # `except Exception` must NOT swallow it, like a real kill -9.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)
