"""The deterministic crash-recovery matrix — the harness the subsystem
exists for.

Every registered crash point is exercised in three store lifecycles:

* **cold**  — first ever publish into an empty store;
* **warm**  — open over a published snapshot, load it, checkpoint;
* **mid-reindex** — publish a *second* generation over a live snapshot.

For each cell the operation runs with an injector armed to die at that
point; the test then re-opens the directory exactly as a restarted
process would (fresh injector, nothing armed) and asserts:

1. recovery succeeds — the open never raises, fsck passes;
2. retrieval is **bit-identical** to one of the two legal oracles (the
   state before the operation, or after it — atomicity means nothing in
   between can be observed);
3. retrying the operation after recovery converges on the post-state;
4. the whole schedule is deterministic: the same spec produces the same
   outcome twice.

Adding a crash point to any write path automatically adds its row here
(the matrix parametrizes over ``all_crash_points()``).
"""

import pytest

from repro.retriever.index import HybridIndex
from repro.storage import (
    CrashInjector,
    CrashSpec,
    IndexStore,
    SimulatedCrash,
    all_crash_points,
)

DOCS_V1 = [(f"doc{i}", f"table finance tariffs row {i}") for i in range(30)]
DOCS_V2 = DOCS_V1[:-5] + [(f"new{i}", f"table supplier orders row {i}") for i in range(8)]
QUERIES = ["tariff finance", "supplier orders", "row 7"]


def frozen(docs):
    index = HybridIndex(dim=32, seed=4)
    index.add_batch(docs)
    return index.freeze()


def results(index):
    if index is None:
        return None
    return [
        [(h.doc_id, h.score) for h in hits] for hits in index.search_batch(QUERIES, k=5)
    ]


ORACLE_V1 = results(frozen(DOCS_V1))
ORACLE_V2 = results(frozen(DOCS_V2))


def run_scenario(root, scenario, spec):
    """Run one lifecycle with ``spec`` armed; returns the crash point that
    fired ('' when the operation completed untouched)."""
    if scenario in ("warm", "mid-reindex"):
        # Seed the durable pre-state with no injection.
        with IndexStore(root) as store:
            store.publish(frozen(DOCS_V1))
            store.checkpoint(clean=True)
    injector = CrashInjector(spec)
    try:
        store = IndexStore(root, crash=injector)
        if scenario == "cold":
            store.publish(frozen(DOCS_V1))
        elif scenario == "warm":
            store.load_index()
            store.checkpoint(clean=False)
        else:  # mid-reindex: second generation over a live snapshot
            store.publish(frozen(DOCS_V2))
        store.checkpoint(clean=True)
    except SimulatedCrash:
        pass  # the "process" died; the directory is what recovery sees
    return injector.crashed


SCENARIOS = {
    "cold": (None, ORACLE_V1),
    "warm": (ORACLE_V1, ORACLE_V1),
    "mid-reindex": (ORACLE_V1, ORACLE_V2),
}


@pytest.mark.parametrize("point", all_crash_points())
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_crash_recovery_is_bit_identical(tmp_path, scenario, point):
    pre_oracle, post_oracle = SCENARIOS[scenario]
    root = tmp_path / "store"
    crashed = run_scenario(root, scenario, CrashSpec.nth(point))

    # Recovery: re-open exactly as a restarted process would.
    recovered = IndexStore(root)
    assert recovered.fsck()["ok"], recovered.fsck()
    observed = results(recovered.load_index())
    legal = [pre_oracle, post_oracle]
    assert observed in legal, f"recovered state matches neither oracle after {crashed or point!r}"
    if not crashed:
        # The point was never on this path: the operation completed.
        assert observed == post_oracle

    # Retrying the interrupted operation converges on the post-state.
    target = frozen(DOCS_V2) if scenario == "mid-reindex" else frozen(DOCS_V1)
    if observed != post_oracle:
        recovered.publish(target)
    recovered.checkpoint(clean=True)
    final = IndexStore(root)
    assert final.open_mode == "clean"
    assert results(final.load_index()) == post_oracle
    assert final.fsck()["ok"]
    final.close()


@pytest.mark.parametrize("point", all_crash_points())
def test_crash_schedule_is_deterministic(tmp_path, point):
    """Same spec, same scenario → same fired point and same on-disk verdict."""
    outcomes = []
    for run in range(2):
        root = tmp_path / f"run{run}"
        crashed = run_scenario(root, "mid-reindex", CrashSpec.nth(point))
        with IndexStore(root) as recovered:
            outcomes.append((crashed, results(recovered.load_index()) == ORACLE_V2))
    assert outcomes[0] == outcomes[1]
