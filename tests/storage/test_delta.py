"""The delta overlay: transparent when empty, correct when not."""

import pytest

from repro.retriever.index import FrozenIndexError, HybridIndex
from repro.storage import DeltaHybridIndex

DOCS = [
    (f"doc{i}", f"table about {'finance tariffs' if i % 3 else 'supplier orders'} row {i}")
    for i in range(40)
]
QUERIES = ["tariff finance", "supplier orders", "row 17"]


def frozen_base():
    index = HybridIndex(dim=48, seed=9)
    index.add_batch(DOCS)
    return index.freeze()


class TestTransparency:
    def test_empty_overlay_is_bit_transparent(self):
        base = frozen_base()
        delta = DeltaHybridIndex(base)
        for mode in ("hybrid", "bm25", "vector"):
            for mine, theirs in zip(
                base.search_batch(QUERIES, k=6, mode=mode),
                delta.search_batch(QUERIES, k=6, mode=mode),
            ):
                assert [(h.doc_id, h.score, h.bm25_rank, h.vector_rank) for h in mine] == [
                    (h.doc_id, h.score, h.bm25_rank, h.vector_rank) for h in theirs
                ]

    def test_requires_frozen_base(self):
        index = HybridIndex(dim=48)
        with pytest.raises(ValueError):
            DeltaHybridIndex(index)


class TestOverlay:
    def test_added_docs_are_searchable(self):
        delta = DeltaHybridIndex(frozen_base())
        delta.add("zebra", "zebra stripes savannah wildlife table")
        hits = delta.search("zebra savannah stripes", k=3)
        assert hits[0].doc_id == "zebra"
        assert "zebra" in delta and delta.text_of("zebra").startswith("zebra")
        assert len(delta) == len(DOCS) + 1

    def test_readd_supersedes_base_copy(self):
        delta = DeltaHybridIndex(frozen_base())
        delta.add("doc3", "completely different zebra content now")
        assert delta.text_of("doc3") == "completely different zebra content now"
        hits = delta.search("zebra content", k=3)
        assert hits[0].doc_id == "doc3"
        # Count stays constant: the base copy is masked, not duplicated.
        assert len(delta) == len(DOCS)

    def test_mask_tombstones_base_doc(self):
        delta = DeltaHybridIndex(frozen_base())
        target = delta.search(QUERIES[0], k=1)[0].doc_id
        delta.mask(target)
        assert target not in delta
        assert len(delta) == len(DOCS) - 1
        with pytest.raises(KeyError):
            delta.text_of(target)
        survivors = [h.doc_id for h in delta.search(QUERIES[0], k=len(DOCS))]
        assert target not in survivors

    def test_freeze_seals_overlay(self):
        delta = DeltaHybridIndex(frozen_base())
        delta.add("x", "extra doc")
        delta.freeze()
        assert delta.frozen
        with pytest.raises(FrozenIndexError):
            delta.add("y", "more")
        with pytest.raises(FrozenIndexError):
            delta.mask("doc1")

    def test_kernel_stats(self):
        delta = DeltaHybridIndex(frozen_base())
        delta.add("x", "extra doc")
        delta.mask("doc1")
        stats = delta.kernel_stats()
        assert stats["kernel"] == "array+delta"
        assert stats["delta_docs"] == 1 and stats["masked_docs"] == 1
        assert stats["docs"] == len(DOCS)  # -1 masked, +1 added


class TestCompaction:
    def test_compact_matches_cold_build(self):
        delta = DeltaHybridIndex(frozen_base())
        delta.add("zebra", "zebra stripes savannah wildlife table")
        delta.add("doc3", "completely different zebra content now")
        delta.mask("doc6")
        compacted = delta.compact()

        cold = HybridIndex(dim=48, seed=9, embedder=delta.embedder)
        items = [(d, t) for d, t in DOCS if d not in ("doc3", "doc6")]
        items += [
            ("zebra", "zebra stripes savannah wildlife table"),
            ("doc3", "completely different zebra content now"),
        ]
        cold.add_batch(items)
        cold.freeze()
        for mine, theirs in zip(
            compacted.search_batch(QUERIES + ["zebra"], k=8),
            cold.search_batch(QUERIES + ["zebra"], k=8),
        ):
            assert [(h.doc_id, h.score) for h in mine] == [(h.doc_id, h.score) for h in theirs]
