"""WAL framing: append-fsync durability, torn-tail detection and truncation."""

import pytest

from repro.storage import CrashInjector, CrashSpec, Journal, SimulatedCrash, replay_journal
from repro.storage.journal import (
    CP_JOURNAL_AFTER_SYNC,
    CP_JOURNAL_BEFORE_SYNC,
    CP_JOURNAL_BEFORE_WRITE,
)


@pytest.fixture
def wal(tmp_path):
    return tmp_path / "wal.log"


class TestAppendReplay:
    def test_round_trip(self, wal):
        records = [{"type": "a", "n": i} for i in range(5)]
        with Journal(wal) as journal:
            for record in records:
                journal.append(record)
        replay = replay_journal(wal)
        assert replay.records == records
        assert replay.torn_bytes == 0

    def test_missing_file_replays_empty(self, wal):
        replay = replay_journal(wal)
        assert replay.records == [] and replay.valid_bytes == 0

    def test_closed_journal_rejects_appends(self, wal):
        journal = Journal(wal)
        journal.close()
        with pytest.raises(ValueError):
            journal.append({"x": 1})


class TestTornTail:
    def _write(self, wal, n=3):
        with Journal(wal) as journal:
            for i in range(n):
                journal.append({"n": i})

    def test_truncated_tail_detected_and_ignored(self, wal):
        self._write(wal)
        blob = wal.read_bytes()
        wal.write_bytes(blob[:-7])  # tear the last frame
        replay = replay_journal(wal)
        assert [r["n"] for r in replay.records] == [0, 1]
        assert replay.torn_bytes > 0 and "truncated" in replay.torn_reason

    def test_bit_flip_in_payload_detected(self, wal):
        self._write(wal)
        blob = bytearray(wal.read_bytes())
        blob[-2] ^= 0xFF
        wal.write_bytes(bytes(blob))
        replay = replay_journal(wal)
        assert [r["n"] for r in replay.records] == [0, 1]
        assert replay.torn_reason == "frame checksum mismatch"

    def test_implausible_length_field(self, wal):
        self._write(wal, n=1)
        blob = bytearray(wal.read_bytes())
        blob[0:4] = (2**31).to_bytes(4, "little")
        wal.write_bytes(bytes(blob))
        replay = replay_journal(wal)
        assert replay.records == [] and replay.torn_reason == "implausible frame length"

    def test_open_for_append_truncates_then_extends(self, wal):
        self._write(wal)
        blob = wal.read_bytes()
        wal.write_bytes(blob[:-7])
        journal, replay = Journal.open_for_append(wal)
        assert replay.torn_bytes > 0
        journal.append({"n": 99})
        journal.close()
        clean = replay_journal(wal)
        # New records land after the truncated-valid prefix, never after garbage.
        assert [r["n"] for r in clean.records] == [0, 1, 99]
        assert clean.torn_bytes == 0


class TestCrashPoints:
    def test_crash_before_write_loses_record(self, wal):
        journal = Journal(wal, crash=CrashInjector(CrashSpec.nth(CP_JOURNAL_BEFORE_WRITE)))
        with pytest.raises(SimulatedCrash):
            journal.append({"n": 0})
        assert replay_journal(wal).records == []

    @pytest.mark.parametrize("point", [CP_JOURNAL_BEFORE_SYNC, CP_JOURNAL_AFTER_SYNC])
    def test_crash_after_write_keeps_record(self, wal, point):
        # The crash model: the process died after the write reached the
        # OS, so replay sees the full frame.  (Power-loss torn tails are
        # the TestTornTail cases above.)
        journal = Journal(wal, crash=CrashInjector(CrashSpec.nth(point)))
        with pytest.raises(SimulatedCrash):
            journal.append({"n": 0})
        assert replay_journal(wal).records == [{"n": 0}]
