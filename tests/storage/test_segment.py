"""Segment files: round trip, alignment, zero-copy, corruption detection."""

import numpy as np
import pytest

from repro.storage import SegmentCorruptError, read_segment, verify_segment, write_segment


@pytest.fixture
def arrays():
    rng = np.random.default_rng(3)
    return {
        "floats": rng.standard_normal((17, 5)).astype(np.float32),
        "ints": np.arange(101, dtype=np.int64),
        "bytes": np.frombuffer(b"hello segment", dtype=np.uint8).copy(),
        "empty": np.empty(0, dtype=np.float64),
    }


class TestRoundTrip:
    def test_arrays_and_meta_survive(self, tmp_path, arrays):
        path = tmp_path / "a.seg"
        digest = write_segment(path, arrays, meta={"kind": "test", "n": 3})
        segment = read_segment(path)
        assert segment.meta == {"kind": "test", "n": 3}
        assert segment.header["payload_blake2b"] == digest
        for name, original in arrays.items():
            got = segment.arrays[name]
            assert got.dtype == original.dtype and got.shape == original.shape
            assert np.array_equal(got, original)

    def test_payload_arrays_are_64_byte_aligned(self, tmp_path, arrays):
        path = tmp_path / "a.seg"
        write_segment(path, arrays)
        segment = read_segment(path)
        for entry in segment.header["toc"]:
            assert entry["offset"] % 64 == 0

    def test_views_are_read_only_memmaps(self, tmp_path, arrays):
        path = tmp_path / "a.seg"
        write_segment(path, arrays)
        segment = read_segment(path)
        view = segment.arrays["ints"]
        assert not view.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 999

    def test_publish_is_atomic_no_temp_left(self, tmp_path, arrays):
        path = tmp_path / "a.seg"
        write_segment(path, arrays)
        assert list(tmp_path.glob(".*.tmp.*")) == []


class TestCorruption:
    def _segment(self, tmp_path, arrays):
        path = tmp_path / "a.seg"
        write_segment(path, arrays)
        return path

    def _flip(self, path, offset):
        blob = bytearray(path.read_bytes())
        blob[offset] ^= 0x40
        path.write_bytes(bytes(blob))

    def test_payload_bit_flip_detected(self, tmp_path, arrays):
        path = self._segment(tmp_path, arrays)
        self._flip(path, len(path.read_bytes()) - 3)
        with pytest.raises(SegmentCorruptError, match="payload checksum"):
            read_segment(path)

    def test_header_bit_flip_detected(self, tmp_path, arrays):
        path = self._segment(tmp_path, arrays)
        self._flip(path, 60)  # inside the JSON header
        with pytest.raises(SegmentCorruptError, match="header checksum"):
            read_segment(path)

    def test_bad_magic_detected(self, tmp_path, arrays):
        path = self._segment(tmp_path, arrays)
        self._flip(path, 0)
        with pytest.raises(SegmentCorruptError, match="magic"):
            read_segment(path)

    def test_truncation_detected(self, tmp_path, arrays):
        path = self._segment(tmp_path, arrays)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(SegmentCorruptError, match="truncated payload|payload checksum"):
            read_segment(path)

    def test_verify_segment_reports_not_raises(self, tmp_path, arrays):
        path = self._segment(tmp_path, arrays)
        assert verify_segment(path)["ok"]
        self._flip(path, len(path.read_bytes()) - 3)
        report = verify_segment(path)
        assert not report["ok"] and report["reason"]

    def test_skip_verify_defers_payload_check(self, tmp_path, arrays):
        path = self._segment(tmp_path, arrays)
        self._flip(path, len(path.read_bytes()) - 3)
        # verify=False trusts the payload (header still checked) — the
        # store never does this for serving, only tooling may.
        segment = read_segment(path, verify=False)
        assert segment.meta == {}
