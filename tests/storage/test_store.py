"""IndexStore: publish/load, recovery classification, quarantine, fsck."""

import pytest

from repro.retriever.index import HybridIndex
from repro.storage import IndexStore

DOCS = [
    (f"doc{i}", f"table about {'finance tariffs' if i % 3 else 'supplier orders'} row {i}")
    for i in range(50)
]
QUERIES = ["tariff finance", "supplier orders", "row 17"]


def frozen_index(seed=9):
    index = HybridIndex(dim=48, seed=seed)
    index.add_batch(DOCS)
    return index.freeze()


def results(index, k=6):
    return [
        [(h.doc_id, h.score) for h in hits] for hits in index.search_batch(QUERIES, k=k)
    ]


@pytest.fixture
def root(tmp_path):
    return tmp_path / "store"


class TestPublishLoad:
    def test_round_trip_bit_identical(self, root):
        index = frozen_index()
        with IndexStore(root) as store:
            assert store.publish(index) == 1
            store.checkpoint(clean=True)
        with IndexStore(root) as store:
            assert results(store.load_index()) == results(index)

    def test_empty_store_has_no_snapshot(self, root):
        with IndexStore(root) as store:
            assert store.load_index() is None
            assert store.open_mode == "clean"  # brand-new directory

    def test_republish_advances_generation_and_gcs_old(self, root):
        with IndexStore(root) as store:
            store.publish(frozen_index())
            store.publish(frozen_index(seed=11))
            assert store.state.generation == 2
            files = {p.name for p in store.segments_dir.iterdir()}
            assert files == {"fusion-000002.seg", "bm25-000002.seg", "hnsw-000002.seg"}


class TestOpenClassification:
    def test_clean_shutdown_then_clean_open(self, root):
        with IndexStore(root) as store:
            store.publish(frozen_index())
            store.checkpoint(clean=True)
        store = IndexStore(root)
        assert store.open_mode == "clean"
        assert store.stats()["opens"] == {"clean": 2, "recovered": 0}
        assert store.stats()["wal_records_replayed"] == 0
        store.close()

    def test_crash_open_is_recovered(self, root):
        store = IndexStore(root)
        store.publish(frozen_index())
        store.close()  # no clean checkpoint: like a crash, WAL keeps records
        recovered = IndexStore(root)
        assert recovered.open_mode == "recovered"
        # The WAL replay still serves the published snapshot.
        assert results(recovered.load_index()) == results(frozen_index())
        recovered.close()

    def test_counters_accumulate_across_checkpoints(self, root):
        store = IndexStore(root)
        store.checkpoint(clean=True)  # persists clean_opens=1
        store = IndexStore(root)
        store.checkpoint(clean=True)
        store = IndexStore(root)
        assert store.stats()["opens"]["clean"] == 3
        store.close()


class TestQuarantine:
    def _published(self, root):
        with IndexStore(root) as store:
            store.publish(frozen_index())
            store.checkpoint(clean=True)

    def _flip(self, root, kind):
        seg = next((root / "segments").glob(f"{kind}-*.seg"))
        blob = bytearray(seg.read_bytes())
        blob[-50] ^= 0xFF
        seg.write_bytes(bytes(blob))
        return seg.name

    @pytest.mark.parametrize("kind", ["bm25", "hnsw"])
    def test_corrupt_half_quarantined_and_rebuilt(self, root, kind):
        self._published(root)
        name = self._flip(root, kind)
        with IndexStore(root) as store:
            index = store.load_index()
            assert store.quarantined_files == [name]
            assert not (store.segments_dir / name).exists()
            assert (store.quarantine_dir / name).exists()
            assert store.rebuilt_segments == [kind]
            # Rebuilt from the fusion texts: retrieval is bit-identical.
            assert results(index) == results(frozen_index())
            # The repair republished: durable state is healed.
            assert store.state.generation == 2
            assert store.fsck()["ok"]
        # The next open verifies clean — no rebuild, no quarantine.
        with IndexStore(root) as store:
            store.load_index()
            assert store.quarantined_files == []

    def test_corrupt_fusion_retires_snapshot(self, root):
        self._published(root)
        name = self._flip(root, "fusion")
        with IndexStore(root) as store:
            assert store.load_index() is None  # caller cold-builds
            assert store.quarantined_files == [name]
            assert not store.state.has_snapshot

    @pytest.mark.parametrize("kind", ["bm25", "hnsw", "fusion"])
    def test_corrupted_segment_never_served(self, tmp_path, kind):
        """The integrity guarantee: after a bit flip, either the segment is
        quarantined+rebuilt or the snapshot is retired — the flipped bytes
        are never silently searched."""
        root = tmp_path / f"store-{kind}"
        self._published(root)
        oracle = results(frozen_index())
        self._flip(root, kind)
        with IndexStore(root) as store:
            index = store.load_index()
            assert index is None or results(index) == oracle
            assert store.quarantined_files  # the damage was detected


class TestFsck:
    def test_detects_manifest_digest_mismatch(self, root):
        with IndexStore(root) as store:
            store.publish(frozen_index())
            assert store.fsck()["ok"]
            # Swap in a *valid* segment that doesn't match the manifest.
            other = HybridIndex(dim=48)
            other.add_batch([("x", "totally different corpus")])
            other.freeze()
            from repro.storage.codec import write_bm25_segment

            target = store._segment_path("bm25")
            write_bm25_segment(target, other.bm25)
            report = store.fsck()
            assert not report["ok"]
            bad = [s for s in report["segments"] if s["kind"] == "bm25"][0]
            assert "manifest" in bad["reason"]

    def test_reports_journal_state(self, root):
        with IndexStore(root) as store:
            store.publish(frozen_index())
            report = store.fsck()
            assert report["journal"]["torn_bytes"] == 0
            assert report["journal"]["records"] >= 1


class TestKnowledgeJournal:
    def test_records_survive_until_checkpoint(self, root):
        store = IndexStore(root)
        recorder = store.knowledge_recorder()
        recorder({"id": "k1", "text": "captured"})
        store.close()
        reopened = IndexStore(root)
        assert reopened.knowledge_records() == [{"id": "k1", "text": "captured"}]
        reopened.checkpoint(clean=True)
        final = IndexStore(root)
        assert final.knowledge_records() == []
        final.close()


class TestSweep:
    def test_stranded_temp_files_removed_on_open(self, root):
        with IndexStore(root) as store:
            store.publish(frozen_index())
            store.checkpoint(clean=True)
        (root / ".MANIFEST.json.tmp.999").write_bytes(b"junk")
        (root / "segments" / ".x.seg.tmp.999").write_bytes(b"junk")
        with IndexStore(root):
            pass
        assert list(root.glob(".*.tmp.*")) == []
        assert list((root / "segments").glob(".*.tmp.*")) == []
