"""Unit and property tests for the BM25 index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import BM25Index


@pytest.fixture
def index():
    idx = BM25Index()
    idx.add("tariffs", "tariff schedule for imported goods by country and year")
    idx.add("procurement", "procurement records of purchased goods suppliers price")
    idx.add("weather", "daily temperature rainfall measurements by weather station")
    return idx


class TestSearch:
    def test_exact_topic_wins(self, index):
        hits = index.search("tariff schedule imports", k=3)
        assert hits[0].doc_id == "tariffs"

    def test_second_topic(self, index):
        hits = index.search("supplier purchase price", k=3)
        assert hits[0].doc_id == "procurement"

    def test_no_overlap_returns_empty(self, index):
        assert index.search("quantum chromodynamics", k=3) == []

    def test_k_limits_results(self, index):
        assert len(index.search("goods", k=1)) == 1

    def test_scores_non_negative_and_sorted(self, index):
        hits = index.search("goods records measurements", k=10)
        scores = [h.score for h in hits]
        assert all(s >= 0 for s in scores)
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_tie_break(self):
        idx = BM25Index()
        idx.add("b", "apple")
        idx.add("a", "apple")
        hits = idx.search("apple", k=2)
        assert [h.doc_id for h in hits] == ["a", "b"]


class TestMaintenance:
    def test_replace_document(self, index):
        index.add("weather", "tariff tariff tariff")
        hits = index.search("tariff", k=3)
        assert {h.doc_id for h in hits} == {"tariffs", "weather"}

    def test_remove(self, index):
        index.remove("tariffs")
        assert "tariffs" not in index
        assert all(h.doc_id != "tariffs" for h in index.search("tariff", k=5))

    def test_remove_missing_raises(self, index):
        with pytest.raises(KeyError):
            index.remove("ghost")

    def test_len(self, index):
        assert len(index) == 3

    def test_score_missing_doc_raises(self, index):
        with pytest.raises(KeyError):
            index.score("x", "ghost")


class TestValidation:
    def test_bad_k1(self):
        with pytest.raises(ValueError):
            BM25Index(k1=-1)

    def test_bad_b(self):
        with pytest.raises(ValueError):
            BM25Index(b=2.0)


words = st.lists(
    st.sampled_from(["tariff", "goods", "price", "station", "sample", "zebra"]),
    min_size=1,
    max_size=8,
)


@given(words, words)
def test_adding_query_terms_never_lowers_score(doc, query):
    """Score is monotone in matched term frequency."""
    idx = BM25Index()
    idx.add("doc", " ".join(doc))
    base = idx.score(" ".join(query), "doc")
    richer = idx.score(" ".join(query + [doc[0]]), "doc")
    assert richer >= base - 1e-12


@given(words)
def test_self_retrieval(doc):
    """A document is always retrievable by its own text."""
    idx = BM25Index()
    idx.add("target", " ".join(doc))
    idx.add("noise", "completely unrelated vocabulary here")
    hits = idx.search(" ".join(doc), k=2)
    assert hits and hits[0].doc_id == "target"


class TestBatchAPI:
    @pytest.fixture
    def index(self):
        idx = BM25Index()
        idx.add_batch(
            [
                ("a", "tariff schedule for imported goods"),
                ("b", "purchase orders by supplier"),
                ("c", "daily rainfall by station"),
            ]
        )
        return idx

    def test_search_batch_matches_search(self, index):
        queries = ["imported tariff goods", "supplier orders", "rainfall", "no match here"]
        batched = index.search_batch(queries, k=2)
        for query, hits in zip(queries, batched):
            solo = index.search(query, k=2)
            assert [(h.doc_id, h.score) for h in hits] == [(h.doc_id, h.score) for h in solo]

    def test_search_batch_empty_index(self):
        assert BM25Index().search_batch(["anything"], k=3) == [[]]

    def test_add_batch_replaces_like_add(self, index):
        index.add_batch([("a", "completely different words now")])
        assert index.search("tariff", k=3) == [] or all(
            h.doc_id != "a" for h in index.search("tariff", k=3)
        )
        assert index.search("different words", k=1)[0].doc_id == "a"
