"""Kernel-specific BM25 behavior: interning, reverse-map removal,
compilation, and the tokenization memo."""

import pytest

from repro.text import BM25Index, tokenize, tokenize_cached
from repro.text.tokenize import TOKEN_CACHE_SIZE, token_cache_stats


class TestRemoveReAdd:
    def test_round_trip_matches_fresh_index(self):
        """remove() + add() churn must leave rankings identical to an
        index that never saw the removed content."""
        base = [(f"d{i}", f"t{i}x alpha beta") for i in range(20)]
        churned = BM25Index()
        churned.add_batch(base)
        for doc_id, text in base[5:15]:
            churned.remove(doc_id)
        for doc_id, text in base[5:15]:
            churned.add(doc_id, text)
        fresh = BM25Index()
        # Slot numbering differs after recycling; rankings must not.
        fresh.add_batch(base[:5] + base[15:] + base[5:15])
        for query in ("alpha", "t7x alpha", "t3x t18x beta"):
            got = churned.search(query, k=20)
            want = fresh.search(query, k=20)
            assert [(h.doc_id, h.score) for h in got] == [(h.doc_id, h.score) for h in want]

    def test_remove_only_touches_own_terms(self):
        index = BM25Index()
        index.add("a", "alpha beta")
        index.add("b", "gamma delta")
        index.remove("a")
        # a's terms are gone from the vocabulary, b's untouched.
        assert index.search("alpha beta", k=5) == []
        assert index.search("gamma", k=5)[0].doc_id == "b"
        assert len(index) == 1

    def test_slot_recycling_is_bounded(self):
        index = BM25Index()
        for round_no in range(50):
            index.add("only", f"round {round_no} tokens here")
            index.remove("only")
        index.add("only", "final text")
        assert index.slot_count <= 2  # freed slots are reused, not leaked

    def test_remove_missing_raises_with_message(self):
        with pytest.raises(KeyError, match="not indexed"):
            BM25Index().remove("ghost")


class TestCompile:
    def test_compile_idempotent_and_invalidated_by_mutation(self):
        index = BM25Index()
        index.add("a", "alpha beta gamma")
        index.compile()
        assert index.compiled
        index.compile()  # no-op
        assert index.compiled
        index.add("b", "alpha delta")
        assert not index.compiled  # mutation de-compiles
        index.compile()
        assert index.compiled
        index.remove("a")
        assert not index.compiled

    def test_compiled_and_lazy_paths_agree(self):
        docs = [(f"d{i}", " ".join(f"t{j}x" for j in range(i % 7 + 1))) for i in range(60)]
        lazy = BM25Index()
        lazy.add_batch(docs)
        compiled = BM25Index()
        compiled.add_batch(docs)
        compiled.compile()
        for query in ("t0x", "t0x t3x t6x", "t5x t6x"):
            assert [(h.doc_id, h.score) for h in lazy.search(query, k=30)] == [
                (h.doc_id, h.score) for h in compiled.search(query, k=30)
            ]

    def test_search_slots_order_matches_search(self):
        index = BM25Index()
        index.add_batch([("b", "alpha"), ("a", "alpha"), ("c", "alpha beta")])
        index.compile()
        (slots,) = index.search_slots(["alpha beta"], k=3)
        by_slot = {slot: doc for doc, slot in index.slot_items()}
        assert [by_slot[s] for s in slots.tolist()] == [
            h.doc_id for h in index.search("alpha beta", k=3)
        ]

    def test_empty_corpus_compile(self):
        index = BM25Index()
        index.compile()
        assert index.search("anything", k=3) == []


class TestTokenizeMemo:
    def test_cached_matches_uncached(self):
        for text in ("Tariff schedules", "camelCaseColumn imported_goods", ""):
            assert list(tokenize_cached(text)) == tokenize(text)
            assert isinstance(tokenize_cached(text), tuple)

    def test_cache_is_bounded_and_counts(self):
        stats = token_cache_stats()
        assert set(stats) == {"tokenize", "char_ngrams"}
        assert stats["tokenize"]["size"] <= TOKEN_CACHE_SIZE
        before = token_cache_stats()["tokenize"]
        tokenize_cached("a phrase the memo has definitely seen by now")
        tokenize_cached("a phrase the memo has definitely seen by now")
        after = token_cache_stats()["tokenize"]
        assert after["hits"] > before["hits"]
