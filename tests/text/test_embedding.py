"""Unit and property tests for deterministic hashed embeddings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import HashingEmbedder, cosine_similarity


@pytest.fixture(scope="module")
def embedder():
    return HashingEmbedder(dim=256)


class TestBasics:
    def test_deterministic(self, embedder):
        a = embedder.embed("tariff schedule")
        b = embedder.embed("tariff schedule")
        assert np.allclose(a, b)

    def test_unit_norm(self, embedder):
        vec = embedder.embed("some nontrivial text about suppliers")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_empty_is_zero(self, embedder):
        assert np.linalg.norm(embedder.embed("")) == 0.0

    def test_batch_shape(self, embedder):
        matrix = embedder.embed_batch(["a b", "c d", "e f"])
        assert matrix.shape == (3, 256)

    def test_batch_empty(self, embedder):
        assert embedder.embed_batch([]).shape == (0, 256)

    def test_min_dim_validated(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=4)


class TestSimilarityStructure:
    def test_related_texts_closer_than_unrelated(self, embedder):
        tariff1 = embedder.embed("tariff rates for imported goods from germany")
        tariff2 = embedder.embed("import tariff percentage by country germany")
        weather = embedder.embed("daily rainfall measured at coastal stations")
        assert cosine_similarity(tariff1, tariff2) > cosine_similarity(tariff1, weather)

    def test_self_similarity_is_one(self, embedder):
        vec = embedder.embed("potassium ppm sample")
        assert cosine_similarity(vec, vec) == pytest.approx(1.0)

    def test_zero_vector_similarity(self, embedder):
        vec = embedder.embed("word")
        assert cosine_similarity(vec, np.zeros(256)) == 0.0


texts = st.text(alphabet="abcdefg ", min_size=1, max_size=30)


@given(texts)
def test_embedding_is_stable_under_recreation(text):
    """Different embedder instances agree (no hidden RNG state)."""
    a = HashingEmbedder(dim=64).embed(text)
    b = HashingEmbedder(dim=64).embed(text)
    assert np.allclose(a, b)


@given(texts)
def test_norm_is_zero_or_one(text):
    vec = HashingEmbedder(dim=64).embed(text)
    norm = np.linalg.norm(vec)
    assert norm == pytest.approx(0.0, abs=1e-12) or norm == pytest.approx(1.0)
