"""Unit tests for the tokenizer and stemmer."""

from repro.text import char_ngrams, stem, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_removes_stopwords(self):
        assert tokenize("the cat and the hat") == ["cat", "hat"]

    def test_snake_case_splits(self):
        assert "potassium" in tokenize("potassium_ppm")

    def test_camel_case_splits(self):
        assert tokenize("tariffRate", do_stem=False) == ["tariff", "rate"]

    def test_numbers_survive(self):
        assert "2020" in tokenize("year 2020")

    def test_no_stop_no_stem(self):
        assert tokenize("the samples", stop=False, do_stem=False) == ["the", "samples"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []


class TestStem:
    def test_plural(self):
        assert stem("samples") == stem("sample")

    def test_gerund(self):
        assert stem("planning") == "plan"

    def test_past_tense(self):
        assert stem("recorded") == stem("record")

    def test_ies(self):
        assert stem("studies") == stem("study")

    def test_short_tokens_untouched(self):
        assert stem("is") == "is"
        assert stem("gas") == "gas"

    def test_idempotent_on_matching_queries(self):
        # The retrieval property we actually need: question and narration
        # inflections collapse together.
        assert tokenize("average potassium readings") == tokenize(
            "average potassium reading"
        )


class TestCharNgrams:
    def test_basic(self):
        assert char_ngrams("abcd", 3) == ["abc", "bcd"]

    def test_short_text(self):
        assert char_ngrams("ab", 3) == ["ab"]

    def test_normalizes_punctuation(self):
        assert char_ngrams("a,b", 3) == ["a b"]

    def test_empty(self):
        assert char_ngrams("", 3) == []
